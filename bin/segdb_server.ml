(* segdb_server — the standalone serving binary.

   Serves one database (a text segment file or a snapshot, detected by
   magic) over the binary wire protocol on TCP or a Unix socket. The
   accept loop submits decoded frames to a persistent Segdb_exec pool
   (bounded admission, per-request deadlines, cooperative
   cancellation), each worker with a private read context;
   SIGTERM/SIGINT or a client shutdown frame drains gracefully.

     segdb_server roads.seg --addr 127.0.0.1:4090 --domains 4
     segdb_server roads.snap --addr unix:/tmp/segdb.sock

   Fault injection: SEGDB_FAILPOINTS is honoured, e.g.
     SEGDB_FAILPOINTS="net.write=torn@20" segdb_server roads.seg       *)

open Cmdliner
module Db = Segdb_core.Segdb
module Exec = Segdb_exec.Exec
module Server = Segdb_net.Server
module Obs = Segdb_obs
module Failpoint = Segdb_io.Failpoint

let serve file addr backend block domains queue_depth deadline_ms no_obs slow_ms
    replica_of epoch idle_timeout_s metrics_addr sample_ms =
  if (not no_obs) && not (Obs.Control.forced_off ()) then Obs.Control.enable ();
  Option.iter Obs.Slowlog.set_threshold_ms slow_ms;
  let db = Server.open_or_build ~backend ~block file in
  let srv =
    Server.create ~domains ~queue_depth ~deadline_ms ~idle_timeout_s ?epoch ?replica_of
      ~db addr
  in
  let metrics_bound = Option.map (Server.serve_metrics srv) metrics_addr in
  (match metrics_bound with
  | Some ma ->
      Obs.Sampler.start ~interval_ms:sample_ms ();
      Printf.printf "metrics on %s (/metrics, /healthz, /varz; sampling every %dms)\n%!"
        (Server.addr_to_string ma) sample_ms
  | None -> ());
  let on_signal _ = Server.stop srv in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  let repl = Server.replication srv in
  Printf.printf
    "serving %s on %s as %s (epoch %d): backend %s, %d segments, pool of %d domains \
     (queue %d, deadline %dms)\n\
     %!"
    file
    (Server.addr_to_string (Server.bound_addr srv))
    (Segdb_net.Replication.role_name (Segdb_net.Replication.role repl))
    (Segdb_net.Replication.epoch repl)
    (Db.backend_name db) (Db.size db)
    (Exec.size (Server.pool srv))
    queue_depth deadline_ms;
  Server.run srv;
  if metrics_bound <> None then Obs.Sampler.stop ();
  Printf.printf "drained: %d requests served\n"
    (Obs.Metrics.value (Obs.Metrics.counter Obs.Metrics.default "net.requests"));
  0

let addr_conv =
  let parse s =
    match Server.addr_of_string s with Ok a -> Ok a | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, Server.pp_addr)

let file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Segment file or snapshot (detected by magic).")

let addr_t =
  Arg.(
    value
    & opt addr_conv (Server.Tcp ("127.0.0.1", 0))
    & info [ "addr"; "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: $(i,HOST:PORT) or $(i,unix:PATH). Port 0 (the default) asks \
           the kernel for a free port; the bound address is printed on startup.")

let backend_conv =
  let parse s =
    match Db.backend_of_string s with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (expected one of: %s)" s
               (String.concat ", " (List.map fst Db.all_backends))))
  in
  let print ppf b =
    Format.pp_print_string ppf (List.find (fun (_, b') -> b' = b) Db.all_backends |> fst)
  in
  Arg.conv (parse, print)

let backend_t =
  Arg.(
    value
    & opt backend_conv `Solution2
    & info [ "backend" ] ~docv:"NAME" ~doc:"Index backend (for text segment files).")

let block_t =
  Arg.(value & opt int 64 & info [ "block"; "B" ] ~docv:"B" ~doc:"Items per disk block.")

let domains_t =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains answering queries.")

let queue_depth_t =
  Arg.(
    value & opt int 128
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Bound on queued requests; past it the server answers $(i,overloaded) instead \
           of buffering without limit.")

let deadline_ms_t =
  Arg.(
    value & opt int 5000
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request budget from the moment it is queued; a request still waiting past \
           it is answered $(i,deadline exceeded) without being executed (0 disables).")

let no_obs_t =
  Arg.(
    value & flag
    & info [ "no-obs" ]
        ~doc:
          "Leave observability off (it is enabled by default, so the $(i,stats) frame \
           has something to report).")

let slow_ms_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Record queries slower than $(docv) milliseconds in the slow-query log \
           (0 records every query; also settable via $(b,SEGDB_SLOW_MS)). Dump it \
           with $(b,segdb_cli slowlog --connect ADDR).")

let replica_of_t =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "replica-of" ] ~docv:"ADDR"
        ~doc:
          "Start as a read-only replica of the primary at $(docv): subscribe to its WAL \
           stream, apply pushed records, catch up by snapshot when joining late or \
           after a partition. Writes are refused with $(i,not primary) until a \
           $(b,segdb_cli promote) turns this node into a primary at a fenced epoch.")

let epoch_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"N"
        ~doc:
          "Seed the replication fencing epoch (default: 1 for a primary, 0 for a \
           replica). Nodes refuse replication frames from a lower epoch.")

let idle_timeout_s_t =
  Arg.(
    value & opt float 0.
    & info [ "idle-timeout-s" ] ~docv:"S"
        ~doc:
          "Reap connections with no traffic and no in-flight requests for $(docv) \
           seconds (0 = never). Subscribed replicas are exempt.")

let metrics_addr_t =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "metrics-addr" ] ~docv:"ADDR"
        ~doc:
          "Also serve HTTP monitoring endpoints on $(docv): $(b,/metrics) (Prometheus \
           exposition with rate and window gauges), $(b,/healthz) (role, epoch, LSN, \
           replication lag; 200 healthy / 503 stalled) and $(b,/varz) (the sampler's \
           time-series ring as JSON). Starts the background sampler.")

let sample_ms_t =
  Arg.(
    value & opt int 1000
    & info [ "sample-ms" ] ~docv:"MS"
        ~doc:
          "Sampler interval: how often the background sampler snapshots the metrics \
           registry to compute per-interval rates and windowed percentiles (only \
           meaningful with $(b,--metrics-addr)).")

let cmd =
  Cmd.v
    (Cmd.info "segdb_server"
       ~doc:"serve a segment database over the binary wire protocol")
    Term.(
      const serve $ file_t $ addr_t $ backend_t $ block_t $ domains_t $ queue_depth_t
      $ deadline_ms_t $ no_obs_t $ slow_ms_t $ replica_of_t $ epoch_t $ idle_timeout_s_t
      $ metrics_addr_t $ sample_ms_t)

let () =
  Failpoint.arm_from_env ();
  Obs.Control.configure_from_env ();
  Obs.Log.configure_from_env ();
  Obs.Slowlog.configure_from_env ();
  exit (Cmd.eval' cmd)
