lib/rtree/rtree.mli: Block_store Io_stats Segdb_geom Segdb_io Segment Vquery
