(** Log-bucketed histogram over non-negative integers.

    The workhorse of the metrics registry: latency-in-nanoseconds and
    blocks-per-operation distributions with cheap O(1) recording and
    p50/p90/p99/max read-out. Buckets are dyadic — bucket [b >= 1]
    holds values in [[2^(b-1), 2^b - 1]], bucket 0 holds [v <= 0] — so
    relative error of an interpolated percentile is bounded by the
    bucket width while memory stays at 64 ints per histogram.

    A histogram is single-owner: record from one domain at a time and
    combine per-domain instances with {!merge_into} (the registry's
    {!Metrics.observe} adds the locking for shared instances). *)

type t

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** Adds one sample. Values [<= 0] land in bucket 0. *)

val count : t -> int
val sum : t -> int
val is_empty : t -> bool

val min_value : t -> int
(** Exact smallest recorded sample; 0 when empty. *)

val max_value : t -> int
(** Exact largest recorded sample; 0 when empty. *)

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [[0, 1]]: linear interpolation inside
    the landing bucket, clamped to the exact min/max (so a histogram
    whose samples are all equal answers exactly). Raises
    [Invalid_argument] outside [[0, 1]]; 0 when empty. *)

val merge_into : into:t -> t -> unit
(** Pointwise sum: after [merge_into ~into src], [into] describes the
    union of both sample sets. Associative and commutative — the
    property cross-domain aggregation relies on. [src] is unchanged. *)

val copy : t -> t
val equal : t -> t -> bool

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket; bucket 0 reports
    [(min_int, 0)]. *)

val buckets : t -> int array
(** A copy of the per-bucket counts (64 entries). *)

val pp : Format.formatter -> t -> unit
