lib/core/rtree_index.ml: Segdb_rtree Vs_index
