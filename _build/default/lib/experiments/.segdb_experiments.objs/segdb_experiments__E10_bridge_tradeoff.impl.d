lib/experiments/e10_bridge_tradeoff.ml: Array Block_store Harness Io_stats List Printf Rng Segdb_geom Segdb_io Segdb_segtree Segdb_util Segdb_workload Table
