(* Helper shared by the VS-query experiments: build each backend over a
   segment set and measure a query workload. *)

open Segdb_geom
module Db = Segdb_core.Segdb

let all = [ "naive"; "rtree"; "solution1"; "solution2" ]

let build backend segs =
  Db.create ~backend:(Option.get (Db.backend_of_string backend)) ~block:Harness.block
    ~pool_blocks:Harness.pool_blocks segs

let measure db (queries : Vquery.t array) =
  Harness.measure ~io:(Db.io db) ~queries ~run:(Db.count db)

let measure_backend backend segs queries =
  let db = build backend segs in
  (db, measure db queries)
