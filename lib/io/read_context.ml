type entry = { uid : int; payload : Obj.t }

type t = { stats : Io_stats.t; cache : entry Lru.t }

let create ?(cache_blocks = 64) () =
  { stats = Io_stats.create (); cache = Lru.create ~capacity:cache_blocks }

let stats t = t.stats
let capacity t = Lru.capacity t.cache
let resident t = Lru.length t.cache
let cache_hits t = Lru.hits t.cache
let cache_misses t = Lru.misses t.cache

let next_uid = Atomic.make 1
let fresh_uid () = Atomic.fetch_and_add next_uid 1

(* The active context is domain-local: installing a reader on one domain
   never affects stores used from another, which is exactly what lets
   one domain per worker run queries against a shared index. *)
let current : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get current)

(* The stats handle reads on this domain are charged to right now: the
   installed reader's counter if any, the given default otherwise.
   Probe sites use it to compute per-span block deltas that stay
   correct inside [with_reader]. *)
let effective_stats default = match active () with Some t -> t.stats | None -> default

let with_reader t f =
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := saved) f

(* Global registry mirrors of the per-reader Lru counters: the Lru's
   own hits/misses live inside each reader, so a scraper (which never
   holds a reader) could not compute a fleet-wide hit rate from them.
   Bumped by hand rather than via [Probe] — Probe sits above this
   module (it reads [effective_stats]). *)
let c_hits = Segdb_obs.Metrics.counter Segdb_obs.Metrics.default "cache.hits"
let c_misses = Segdb_obs.Metrics.counter Segdb_obs.Metrics.default "cache.misses"

let find t ~uid ~addr =
  match Lru.find t.cache addr with
  | None ->
      if Segdb_obs.Control.enabled () then Segdb_obs.Metrics.incr c_misses;
      None
  | Some e ->
      if Segdb_obs.Control.enabled () then Segdb_obs.Metrics.incr c_hits;
      if e.uid <> uid then
        invalid_arg
          "Read_context: address resolved to a block of a different store; a \
           reader must not be shared across databases"
      else Some e.payload

let add t ~uid ~addr payload =
  (* reader frames are never dirty, so eviction costs nothing *)
  Lru.put t.cache addr { uid; payload } ~on_evict:(fun _ _ -> ())
