(** Trace spans over the query pipeline.

    A span marks one phase of work — a first-level descent step, a PST
    [Find]/[Report], an interval-tree stab, a slab-tree walk, a
    [File_store] page fetch, a WAL append. Finished spans land in
    per-domain ring buffers (oldest overwritten first, merged by
    {!events}) and their durations and block counts feed per-phase
    histograms ([span.<phase>.ns] / [span.<phase>.blocks]) in
    {!Metrics.default}, which is where the per-phase percentile tables
    come from.

    Every event carries the recording domain's id and the domain's
    current {e request id} (see {!with_request_id}), which is what
    lets spans from a client process and a server's worker domains be
    stitched back into one per-request timeline.

    All of it is inert while {!Control.enabled} is false: [enter]
    returns a shared dummy, [exit] returns immediately, nothing is
    allocated or locked. *)

type event = {
  seq : int;  (** monotone across the process; survives wraparound *)
  phase : string;
  depth : int;  (** nesting depth on the recording domain *)
  t0_ns : int;  (** wall-clock start, nanoseconds *)
  dur_ns : int;
  blocks : int;  (** block reads charged during the span *)
  request_id : int;  (** request the span belongs to; 0 = none *)
  dom : int;  (** id of the domain that recorded the span *)
}

type span

val none : span
(** The disabled span; exiting it is a no-op. *)

(** {1 Request identity} *)

val fresh_request_id : unit -> int
(** A new positive request id: unique within this process, unlikely to
    collide across processes (the base folds in clock and pid). Never
    returns 0. *)

val current_request_id : unit -> int
(** The calling domain's current request id; 0 when none is set. *)

val set_request_id : int -> unit
(** Sets the calling domain's request id; spans entered afterwards on
    this domain are attributed to it. Prefer {!with_request_id} where
    the extent is lexical. *)

val with_request_id : int -> (unit -> 'a) -> 'a
(** [with_request_id rid f] runs [f] with the calling domain's request
    id set to [rid], restoring the previous id afterwards (also on
    exception). *)

(** {1 Spans} *)

val enter : ?blocks:int -> string -> span
(** Opens a span for [phase]. [blocks] is the caller's current
    block-read counter (see {!Segdb_io.Probe} for the helper that picks
    the right one); the matching [exit] turns the pair into a delta. *)

val exit : ?blocks:int -> span -> unit
(** Closes the span: records the event in the ring and feeds the
    per-phase histograms. Safe from any domain. *)

val with_span : ?blocks:(unit -> int) -> string -> (unit -> 'a) -> 'a
(** [with_span phase f] wraps [f] in a span, sampling [blocks] at entry
    and exit. When tracing is off this is exactly [f ()]. *)

val record :
  ?request_id:int -> ?blocks:int -> t0_ns:int -> dur_ns:int -> string -> unit
(** [record ~t0_ns ~dur_ns phase] injects a completed event directly,
    for intervals whose endpoints were measured out-of-band — e.g. a
    queue wait stamped on the submitting domain and measured at pickup
    on a worker. Uses the calling domain's current request id unless
    [request_id] is given, and feeds the same per-phase histograms as
    a span. No-op while tracing is off. *)

(** {1 The ring} *)

val events : unit -> event list
(** The surviving events of every domain's ring, merged, oldest first
    (by [seq]). Each domain retains at most [capacity ()] events. *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Replaces the rings (discarding recorded events); the capacity is
    per domain. Default 4096. Raises [Invalid_argument] when not
    positive. *)

val capacity : unit -> int

val span_histogram : string -> string
(** [span_histogram phase] is the name of the duration histogram the
    phase feeds in {!Metrics.default} ([span.<phase>.ns]). *)

val span_blocks_histogram : string -> string
(** The blocks-per-span histogram name ([span.<phase>.blocks]). *)

val now_ns : unit -> int
(** The clock spans are stamped with (wall time in nanoseconds). *)
