(* GIS scenario: a map layer of road polylines, queried with
   north-south corridors ("which roads does the planned tram line
   cross between 12th and 48th street?").

   This is the application the paper leads with: map layers stored as
   collections of NCT segments, intersected with fixed-direction
   generalized segments. The example builds the same layer under every
   backend and compares exactness and I/O.

   Run with: dune exec examples/gis_map_overlay.exe *)

open Segdb_geom
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module Rng = Segdb_util.Rng
module Table = Segdb_util.Table
module Io_stats = Segdb_io.Io_stats

let () =
  let span = 10_000.0 in
  let n = 50_000 in
  let roads = W.roads (Rng.create 7) ~n ~span in
  Printf.printf "map layer: %d road segments over a %.0fkm x %.0fkm extent\n" n
    (span /. 1000.0) (span /. 1000.0);

  (* three corridors of different heights *)
  let corridors =
    [
      ("narrow underpass", Vquery.segment ~x:2_345.0 ~ylo:4_000.0 ~yhi:4_150.0);
      ("tram line", Vquery.segment ~x:5_210.0 ~ylo:1_200.0 ~yhi:7_800.0);
      ("full north-south survey", Vquery.line ~x:8_888.0);
    ]
  in

  let table =
    Table.create ~title:"corridor crossings by backend (I/Os per query)"
      ~columns:("corridor" :: "hits" :: List.map fst Db.all_backends)
  in
  List.iter
    (fun (name, q) ->
      let row =
        List.map
          (fun (_, backend) ->
            let db = Db.create ~backend ~block:64 ~pool_blocks:32 roads in
            let io = Db.io db in
            Io_stats.reset io;
            let k = Db.count db q in
            ignore k;
            Table.cell_int (Io_stats.total_io io))
          Db.all_backends
      in
      let reference = Db.create ~backend:`Solution2 roads in
      Table.add_row table ((name :: Table.cell_int (Db.count reference q) :: row)))
    corridors;
  Table.print table;

  (* all backends agree on the answers — the scan is the ground truth *)
  let naive = Db.create ~backend:`Naive roads in
  let sol2 = Db.create ~backend:`Solution2 roads in
  let agree =
    List.for_all
      (fun (_, q) -> Db.query_ids naive q = Db.query_ids sol2 q)
      corridors
  in
  Printf.printf "exactness check (solution2 vs scan): %s\n"
    (if agree then "ok" else "MISMATCH")
