open Segdb_io

(** Shared machinery of the experiment suite (EXPERIMENTS.md).

    Experiments measure I/O by snapshotting a structure's {!Io_stats}
    counter around each operation; builds are excluded unless an
    experiment measures them explicitly. Parameters follow one global
    convention: seed 42 unless varied, block size [B = 64], a 64-block
    buffer pool (small relative to every index measured, so counts
    reflect traversals, not caching). *)

type params = {
  seed : int;
  quick : bool; (** smaller sweeps for smoke runs *)
}

val default : params
val quick : params

val sweep_n : params -> int list
(** Database sizes: powers of two, [2^10 .. 2^17] (quick: [.. 2^13]). *)

type output =
  | Table of Segdb_util.Table.t
  | Chart of string  (** pre-rendered ASCII chart *)

type cost = {
  queries : int;
  mean_io : float; (** mean I/Os (reads + writes) per operation *)
  max_io : float;
  mean_out : float; (** mean output size *)
}

val measure : io:Io_stats.t -> queries:'q array -> run:('q -> int) -> cost
(** Runs every query, charging its I/O delta; [run] returns the output
    size. *)

val cost_cells : cost -> string list
(** [mean_io; max_io; mean_out] formatted. *)

val pool_blocks : int
val block : int

val log2 : float -> float
