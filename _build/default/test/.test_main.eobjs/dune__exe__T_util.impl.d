test/t_util.ml: Alcotest Array Ascii_plot Float Gen List QCheck QCheck_alcotest Rng Segdb_util Stats String Table
