(* Internal-memory interval tree tests (the paper's in-core baseline). *)

open Segdb_geom
module I = Segdb_internal.Internal_interval_tree

let qtest = QCheck_alcotest.to_alcotest

let ivl i (a, b) =
  let lo = Float.min a b and hi = Float.max a b in
  { I.lo; hi; seg = Segment.make ~id:i (lo, 0.0) (hi, 0.0) }

let ivls_gen =
  QCheck.Gen.(
    let* n = 0 -- 150 in
    let* raw = list_size (return n) (pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0)) in
    return (Array.of_list (List.mapi ivl raw)))

let scenario =
  QCheck.make
    ~print:(fun (ivls, x, w) -> Printf.sprintf "n=%d x=%g w=%g" (Array.length ivls) x w)
    QCheck.Gen.(triple ivls_gen (float_range (-120.0) 120.0) (float_range 0.0 80.0))

let ids l = List.map (fun iv -> iv.I.seg.Segment.id) l |> List.sort compare

let prop_stab =
  QCheck.Test.make ~name:"internal stab equals naive" ~count:300 scenario (fun (ivls, x, _) ->
      let t = I.build ivls in
      ids (I.stab_list t x)
      = (Array.to_list ivls |> List.filter (fun iv -> iv.I.lo <= x && x <= iv.I.hi) |> ids))

let prop_overlap =
  QCheck.Test.make ~name:"internal overlap equals naive" ~count:300 scenario
    (fun (ivls, a, w) ->
      let t = I.build ivls in
      let b = a +. w in
      let got = ref [] in
      I.overlap t ~lo:a ~hi:b ~f:(fun iv -> got := iv :: !got);
      ids !got
      = (Array.to_list ivls |> List.filter (fun iv -> iv.I.lo <= b && iv.I.hi >= a) |> ids))

let prop_invariants =
  QCheck.Test.make ~name:"internal invariants + insert/delete" ~count:200 scenario
    (fun (ivls, x, _) ->
      QCheck.assume (Array.length ivls > 0);
      let k = Array.length ivls / 2 in
      let t = I.build (Array.sub ivls 0 k) in
      for i = k to Array.length ivls - 1 do
        I.insert t ivls.(i)
      done;
      let doomed, kept =
        Array.to_list ivls |> List.partition (fun iv -> iv.I.seg.Segment.id mod 3 = 0)
      in
      let ok_del = List.for_all (I.delete t) doomed in
      ok_del && I.check_invariants t
      && I.size t = List.length kept
      && ids (I.stab_list t x)
         = (kept |> List.filter (fun iv -> iv.I.lo <= x && x <= iv.I.hi) |> ids))

let test_height_logarithmic () =
  let ivls = Array.init 20_000 (fun i -> ivl i (float_of_int i, float_of_int (i + 3))) in
  let t = I.build ivls in
  Alcotest.(check bool)
    (Printf.sprintf "height %d is logarithmic" (I.height t))
    true
    (I.height t <= 30)

let suite =
  ( "internal",
    [
      Alcotest.test_case "height logarithmic" `Quick test_height_logarithmic;
      qtest prop_stab;
      qtest prop_overlap;
      qtest prop_invariants;
    ] )

(* -------- Internal PST and internal VS structure -------- *)

module Ipst = Segdb_internal.Internal_pst
module Ivs = Segdb_internal.Internal_vs
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng

let lseg_scenario =
  QCheck.make
    ~print:(fun (seed, n, uq, v1, w) ->
      Printf.sprintf "seed=%d n=%d uq=%g v=[%g,%g]" seed n uq v1 (v1 +. w))
    QCheck.Gen.(
      let* seed = 0 -- 100_000 in
      let* n = 0 -- 120 in
      let* uq = float_range 0.0 30.0 in
      let* v1 = float_range (-10.0) 110.0 in
      let* w = float_range 0.0 60.0 in
      return (seed, n, uq, v1, w))

let prop_ipst_oracle =
  QCheck.Test.make ~name:"internal PST equals naive filter" ~count:300 lseg_scenario
    (fun (seed, n, uq, v1, w) ->
      let lsegs = W.line_based (Rng.create seed) ~n ~vspan:100.0 ~umax:25.0 in
      let t = Ipst.build lsegs in
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. w) in
      let got =
        Ipst.query_list t q |> List.map (fun (s : Lseg.t) -> s.Lseg.id) |> List.sort compare
      in
      let expected =
        Array.to_list lsegs |> List.filter (Lseg.matches q)
        |> List.map (fun (s : Lseg.t) -> s.Lseg.id)
        |> List.sort compare
      in
      Ipst.check_invariants t && got = expected)

let vs_scenario =
  QCheck.make
    ~print:(fun (seed, n, fam, x, y1, w) ->
      Printf.sprintf "seed=%d n=%d fam=%s x=%g y=[%g,%g]" seed n fam x y1 (y1 +. w))
    QCheck.Gen.(
      let* seed = 0 -- 100_000 in
      let* n = 0 -- 120 in
      let* fam = oneofl [ "roads"; "grid"; "fans" ] in
      let* x = float_range (-10.0) 110.0 in
      let* y1 = float_range (-10.0) 110.0 in
      let* w = float_range 0.0 60.0 in
      return (seed, n, fam, x, y1, w))

let gen_vs fam rng n =
  match fam with
  | "roads" -> W.roads rng ~n ~span:100.0
  | "grid" -> W.grid_city rng ~n ~span:100 ~max_len:25
  | _ -> W.fans rng ~n ~centers:4 ~span:100

let prop_ivs_oracle =
  QCheck.Test.make ~name:"internal VS structure equals naive filter" ~count:300 vs_scenario
    (fun (seed, n, fam, x, y1, w) ->
      let segs = gen_vs fam (Rng.create seed) n in
      let t = Ivs.build segs in
      let queries =
        [
          Vquery.segment ~x ~ylo:y1 ~yhi:(y1 +. w);
          Vquery.line ~x;
          (if Array.length segs > 0 then Vquery.line ~x:segs.(Array.length segs / 2).Segment.x1
           else Vquery.line ~x);
        ]
      in
      Ivs.check_invariants t
      && List.for_all
           (fun q ->
             Ivs.query_ids t q
             = (Array.to_list segs |> List.filter (Vquery.matches q)
               |> List.map (fun (s : Segment.t) -> s.Segment.id)
               |> List.sort compare))
           queries)

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_ipst_oracle; qtest prop_ivs_oracle ])
