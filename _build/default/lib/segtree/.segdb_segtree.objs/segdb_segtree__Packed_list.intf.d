lib/segtree/packed_list.mli: Block_store Io_stats Segdb_io
