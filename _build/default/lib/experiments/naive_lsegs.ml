open Segdb_io
open Segdb_geom

module Store = Block_store.Make (struct
  type t = Lseg.t array
end)

type t = { store : Store.t; blocks : Block_store.addr list }

let build ?(block = 64) ~pool ~stats lsegs =
  let store = Store.create ~name:"naive-lsegs" ~pool ~stats () in
  let n = Array.length lsegs in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < n do
    let len = min block (n - !i) in
    blocks := Store.alloc store (Array.sub lsegs !i len) :: !blocks;
    i := !i + len
  done;
  { store; blocks = !blocks }

let count t q =
  let n = ref 0 in
  List.iter
    (fun a -> Array.iter (fun s -> if Lseg.matches q s then incr n) (Store.read t.store a))
    t.blocks;
  !n

let block_count t = Store.block_count t.store
