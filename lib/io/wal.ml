type t = {
  path : string;
  fd : Unix.file_descr;
  sync_every_append : bool;
  mutable bytes : int;
  mutable count : int;
}

let c_append = Probe.counter "wal.append"
let c_replayed = Probe.counter "wal.replayed"
let sp_append = Failpoint.site "wal.append"

let frame_overhead = 8 (* len u32 | crc u32 *)

(* Longest valid prefix of [data]: the records it frames and the byte
   offset where the first torn or corrupt frame starts. *)
let valid_prefix data =
  let len = String.length data in
  let records = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + frame_overhead > len then stop := true
    else begin
      let r = Codec.R.of_string ~pos:!pos data in
      let n = Codec.R.u32 r in
      let crc = Codec.R.u32 r in
      if n > len - !pos - frame_overhead then stop := true
      else begin
        let payload = String.sub data (!pos + frame_overhead) n in
        if Crc.string payload <> crc then stop := true
        else begin
          records := payload :: !records;
          pos := !pos + frame_overhead + n
        end
      end
    end
  done;
  (List.rev !records, !pos)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan path =
  if not (Sys.file_exists path) then []
  else fst (valid_prefix (read_file path))

(* The log is a total order, so "replay from LSN [from]" is just the
   suffix after dropping the first [from] records. *)
let scan_from path ~from =
  let rec drop n = function
    | l when n <= 0 -> l
    | [] -> []
    | _ :: tl -> drop (n - 1) tl
  in
  drop from (scan path)

let open_ ?(sync = true) path =
  let existing = if Sys.file_exists path then read_file path else "" in
  let records, valid = valid_prefix existing in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if String.length existing > valid then begin
    Unix.ftruncate fd valid;
    Segdb_obs.Log.warn ~comp:"wal" "torn tail truncated" (fun () ->
        [
          Segdb_obs.Log.s "path" path;
          Segdb_obs.Log.i "dropped_bytes" (String.length existing - valid);
          Segdb_obs.Log.i "valid_bytes" valid;
        ])
  end;
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  if records <> [] then
    Segdb_obs.Log.info ~comp:"wal" "log replayed" (fun () ->
        [
          Segdb_obs.Log.s "path" path;
          Segdb_obs.Log.i "records" (List.length records);
          Segdb_obs.Log.i "bytes" valid;
        ]);
  Probe.bump_by c_replayed (List.length records);
  ( { path; fd; sync_every_append = sync; bytes = valid; count = List.length records },
    records )

let append t payload =
  Probe.bump c_append;
  Segdb_obs.Trace.with_span "wal.append" @@ fun () ->
  let b = Buffer.create (frame_overhead + String.length payload) in
  Codec.W.u32 b (String.length payload);
  Codec.W.u32 b (Crc.string payload);
  Buffer.add_string b payload;
  (* The explicit offset pins the frame to the log's logical end: a
     transient error retries the whole frame from its start instead of
     appending a torn partial copy, and EINTR/EAGAIN/short writes are
     handled by the wrapper (a persistently stalled write errors out
     rather than spinning). *)
  Failpoint.Io.write_all ~site:sp_append t.fd ~off:t.bytes (Buffer.to_bytes b);
  t.bytes <- t.bytes + Buffer.length b;
  t.count <- t.count + 1;
  if t.sync_every_append then Failpoint.Io.fsync t.fd

let sync t = Failpoint.Io.fsync t.fd

let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  t.bytes <- 0;
  t.count <- 0;
  Failpoint.Io.fsync t.fd

(* ---------------- offline audit ---------------- *)

type audit = { audit_records : int; valid_bytes : int; file_bytes : int }

let audit path =
  if not (Sys.file_exists path) then
    { audit_records = 0; valid_bytes = 0; file_bytes = 0 }
  else
    let data = read_file path in
    let records, valid = valid_prefix data in
    {
      audit_records = List.length records;
      valid_bytes = valid;
      file_bytes = String.length data;
    }

let size t = t.bytes
let records t = t.count
let path t = t.path
let close t = Unix.close t.fd
