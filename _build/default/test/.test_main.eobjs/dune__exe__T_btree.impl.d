test/t_btree.ml: Alcotest Array Block_store Int Io_stats List Map Printf QCheck QCheck_alcotest Segdb_btree Segdb_io
