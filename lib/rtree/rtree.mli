open Segdb_io
open Segdb_geom

(** R-tree over segments — the evaluation baseline.

    The paper's structures have worst-case output-sensitive bounds; the
    R-tree is what practitioners actually deploy for this niche (the
    novelty calibration notes "spatial indexes cover practical needs").
    Benches compare both: the R-tree has no output-sensitivity guarantee
    for vertical-segment queries, and its behaviour on skewed inputs is
    exactly the gap the paper's structures close.

    Implementation: Sort-Tile-Recursive bulk loading, Guttman
    least-enlargement descent with quadratic splits for insertion, one
    node per block. *)

type t

val create :
  ?node_capacity:int -> pool:Block_store.Pool.t -> stats:Io_stats.t -> unit -> t

val bulk_load :
  ?node_capacity:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  Segment.t array ->
  t
(** STR packing: full leaves, minimal overlap on uniform data. *)

val insert : t -> Segment.t -> unit

val delete : t -> Segment.t -> bool
(** Removes the segment (matched by id and geometry). Emptied nodes are
    pruned and a single-child root is collapsed; underfull interior
    nodes are tolerated (Guttman's re-insertion pass is omitted). *)

val size : t -> int
val height : t -> int
val block_count : t -> int

val query : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
(** Exact answers: bounding-box descent plus an exact intersection
    filter at the leaves. *)

val query_list : t -> Vquery.t -> Segment.t list

val iter : t -> (Segment.t -> unit) -> unit
(** Every stored segment once, in leaf order; charges the I/O of a full
    tree walk. *)

val check_invariants : t -> bool
(** Bounding boxes cover children, occupancy bounds, uniform depth. *)
