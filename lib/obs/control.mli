(** The master switch of the observability subsystem.

    Probe sites throughout the I/O stack ({!Block_store}, {!File_store},
    the PSTs, interval trees, slab segment trees, the WAL, snapshots)
    check [enabled ()] before touching any metric or trace state. The
    default is off: a disabled probe costs one atomic load and nothing
    else, so query paths run at their uninstrumented speed. *)

val enabled : unit -> bool
(** One atomic load; [false] by default. *)

val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Runs [f] with observability on, restoring the previous state after
    (also on exceptions). *)
