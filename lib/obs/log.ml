(* Structured logging: leveled key/value events with nanosecond
   timestamps and domain tags.

   Off by default, and the off path is one [Atomic.get]: [log] (and
   the level helpers) take the field list as a thunk, so a guarded
   call site builds nothing when the level is below threshold — and a
   hot path that would even allocate the thunk's closure can guard on
   [would_log] first.

   Sinks: stderr (on by default once logging is enabled), an optional
   append-mode file, and an optional bounded in-memory ring (for
   tests and post-mortem dumps). Emission serializes on one mutex —
   logging is for rare events (accepts, drains, overloads, recovery),
   not per-block probes; those are metrics. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* 4 = above Error = nothing logs. *)
let off_threshold = 4

let threshold = Atomic.make off_threshold

let set_level = function
  | None -> Atomic.set threshold off_threshold
  | Some l -> Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let would_log l = severity l >= Atomic.get threshold

type value = S of string | I of int | F of float | B of bool

type field = string * value

let s k v = (k, S v)
let i k v = (k, I v)
let f k v = (k, F v)
let b k v = (k, B v)

type event = {
  ts_ns : int;
  lvl : level;
  dom : int;
  comp : string;
  msg : string;
  fields : field list;
}

(* ---------------- rendering (logfmt) ---------------- *)

let needs_quoting v =
  v = ""
  || String.exists
       (fun c -> c = ' ' || c = '"' || c = '=' || c = '\\' || Char.code c < 0x20)
       v

let quote buf v =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.add_char buf '"'

let add_value buf = function
  | S v -> if needs_quoting v then quote buf v else Buffer.add_string buf v
  | I v -> Buffer.add_string buf (string_of_int v)
  | F v -> Buffer.add_string buf (Printf.sprintf "%.6g" v)
  | B v -> Buffer.add_string buf (string_of_bool v)

let render ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "ts=%d level=%s dom=%d comp=" ev.ts_ns (level_name ev.lvl) ev.dom);
  add_value buf (S ev.comp);
  Buffer.add_string buf " msg=";
  quote buf ev.msg;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      add_value buf v)
    ev.fields;
  Buffer.contents buf

(* ---------------- sinks ---------------- *)

let mu = Mutex.create ()
let to_stderr = ref true
let file_chan : out_channel option ref = ref None
let ring : event option array ref = ref [||]
let ring_next = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_stderr on = locked (fun () -> to_stderr := on)

let set_file path =
  locked (fun () ->
      (match !file_chan with Some ch -> close_out_noerr ch | None -> ());
      file_chan :=
        match path with
        | None -> None
        | Some p -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 p))

let set_ring n =
  locked (fun () ->
      ring := (if n <= 0 then [||] else Array.make n None);
      ring_next := 0)

let ring_events () =
  locked (fun () ->
      let n = Array.length !ring in
      let acc = ref [] in
      (* oldest first: walk forward from the write cursor *)
      for k = 0 to n - 1 do
        match !ring.((!ring_next + k) mod n) with
        | Some ev -> acc := ev :: !acc
        | None -> ()
      done;
      List.rev !acc)

let emit ev =
  locked (fun () ->
      let n = Array.length !ring in
      if n > 0 then begin
        !ring.(!ring_next mod n) <- Some ev;
        ring_next := !ring_next + 1
      end;
      if !to_stderr || !file_chan <> None then begin
        let line = render ev ^ "\n" in
        if !to_stderr then (output_string stderr line; flush stderr);
        match !file_chan with
        | Some ch -> output_string ch line; flush ch
        | None -> ()
      end)

(* ---------------- logging ---------------- *)

let log l ~comp msg fields =
  if severity l >= Atomic.get threshold then
    emit
      {
        ts_ns = Trace.now_ns ();
        lvl = l;
        dom = (Domain.self () :> int);
        comp;
        msg;
        fields = fields ();
      }

let debug ~comp msg fields = log Debug ~comp msg fields
let info ~comp msg fields = log Info ~comp msg fields
let warn ~comp msg fields = log Warn ~comp msg fields
let error ~comp msg fields = log Error ~comp msg fields

(* SEGDB_LOG=info turns logging on at that level; SEGDB_LOG_FILE
   redirects the line stream to a file (stderr stays on unless
   SEGDB_LOG_STDERR=0). Unset variables leave the current config. *)
let configure_from_env () =
  (match Sys.getenv_opt "SEGDB_LOG" with
  | Some v -> (
      match level_of_string v with
      | Some l -> set_level (Some l)
      | None -> if String.trim v = "off" then set_level None)
  | None -> ());
  (match Sys.getenv_opt "SEGDB_LOG_FILE" with
  | Some p when p <> "" -> set_file (Some p)
  | _ -> ());
  match Sys.getenv_opt "SEGDB_LOG_STDERR" with
  | Some ("0" | "false" | "no") -> set_stderr false
  | _ -> ()
