type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row > List.length t.columns then
    invalid_arg "Table.add_row: row wider than header";
  t.rows <- row :: t.rows

let cell_int = string_of_int

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row
  in
  measure t.columns;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Buffer.add_string buf (rule ^ "\n");
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (render t)
