lib/io/ext_sort.mli: Block_store Io_stats
