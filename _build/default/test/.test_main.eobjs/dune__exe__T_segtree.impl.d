test/t_segtree.ml: Alcotest Array Block_store Fun Io_stats List Printf QCheck QCheck_alcotest Segdb_geom Segdb_io Segdb_segtree Segdb_util Segment
