(* E9 — workload-shape sensitivity: the motivating application domains
   (GIS roads, planarized city grids, temporal histories, fan hot-spots,
   long parallel spans) at a fixed N. The R-tree degrades on skew (fans,
   long spans); the paper's structures hold their bounds. *)

open Segdb_util
module W = Segdb_workload.Workload

let id = "e9"
let title = "E9: query I/O by workload family"
let validates = "Introduction: robustness across GIS/temporal/adversarial shapes"

let run (p : Harness.params) =
  let n = if p.quick then 1 lsl 13 else 1 lsl 16 in
  let span = 1000.0 in
  let families =
    [
      ("roads", W.roads (Rng.create p.seed) ~n ~span);
      ("grid-city", W.grid_city (Rng.create p.seed) ~n ~span:1000 ~max_len:60);
      ("temporal", W.temporal (Rng.create p.seed) ~n ~keys:200 ~horizon:1000);
      ("fans", W.fans (Rng.create p.seed) ~n ~centers:16 ~span:1000);
      ("long-spans", W.long_spans (Rng.create p.seed) ~n ~span);
    ]
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (N = %d)" title n)
      ~columns:[ "family"; "naive"; "rtree"; "sol1"; "sol2"; "mean t" ]
  in
  List.iter
    (fun (name, segs) ->
      let queries =
        W.segment_queries (Rng.create (p.seed + 1)) ~n:30 ~span ~selectivity:0.02
      in
      let cost b =
        let _, c = Backends.measure_backend b segs queries in
        c
      in
      let cn = cost "naive" and cr = cost "rtree" in
      let c1 = cost "solution1" and c2 = cost "solution2" in
      Table.add_row table
        [
          name;
          Table.cell_float ~decimals:1 cn.mean_io;
          Table.cell_float ~decimals:1 cr.mean_io;
          Table.cell_float ~decimals:1 c1.mean_io;
          Table.cell_float ~decimals:1 c2.mean_io;
          Table.cell_float ~decimals:1 c2.mean_out;
        ])
    families;
  [ Harness.Table table ]
