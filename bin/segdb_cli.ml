(* segdb command-line interface.

   Subcommands:
     generate  — emit a workload family as a segment file
     stats     — build an index and print structural statistics
     query     — run vertical line/ray/segment queries against a file
     compare   — run a query workload across all backends (I/O table)
     batch     — answer a file of queries in parallel across domains
     save      — build an index and snapshot it to disk
     open      — reopen a snapshot (image restore or rebuild) + optional WAL
     recover   — replay a WAL over a snapshot, optionally checkpointing
     scrub     — verify a store/snapshot file: CRCs, chains, index invariants
     repair    — rebuild a damaged snapshot from surviving sections + WAL
     serve     — serve a segment file or snapshot over TCP / a Unix socket
     ping      — round-trip a ping frame against a running server
     shutdown  — ask a running server to drain and exit

   query, batch and stats accept --connect HOST:PORT (or unix:PATH) to
   run against a server instead of building an index in-process.

   Fault injection: every subcommand honours SEGDB_FAILPOINTS (see
   Segdb_io.Failpoint), e.g.
     SEGDB_FAILPOINTS="pread=flip@3" segdb_cli open roads.snap

   Examples:
     segdb_cli generate --family roads -n 10000 -o roads.seg
     segdb_cli query roads.seg --backend solution2 --x 420 --ylo 10 --yhi 90
     segdb_cli compare roads.seg --queries 50 --selectivity 0.02
     segdb_cli batch roads.seg --queries-file q.txt --domains 4
     segdb_cli save roads.seg -o roads.snap --backend solution2
     segdb_cli open roads.snap --wal roads.wal --x 420 --ylo 10 --yhi 90
     segdb_cli recover roads.snap --wal roads.wal --checkpoint roads.snap   *)

open Cmdliner
open Segdb_geom
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module Seg_file = Segdb_core.Seg_file
module Rng = Segdb_util.Rng
module Table = Segdb_util.Table
module Io_stats = Segdb_io.Io_stats
module File_store = Segdb_io.File_store
module Wal = Segdb_io.Wal
module Failpoint = Segdb_io.Failpoint
module Snapshot = Segdb_core.Snapshot
module Obs = Segdb_obs
module Exec = Segdb_exec.Exec
module Server = Segdb_net.Server
module Client = Segdb_net.Client
module Replication = Segdb_net.Replication

(* ---------------- shared arguments ---------------- *)

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let block_t =
  Arg.(value & opt int 64 & info [ "block"; "B" ] ~docv:"B" ~doc:"Items per disk block.")

let pool_t =
  Arg.(
    value & opt int 64
    & info [ "pool" ] ~docv:"BLOCKS" ~doc:"Buffer pool capacity in blocks.")

let backend_conv =
  let parse s =
    match Db.backend_of_string s with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (expected one of: %s)" s
               (String.concat ", " (List.map fst Db.all_backends))))
  in
  let print ppf b =
    let name = List.find (fun (_, b') -> b' = b) Db.all_backends |> fst in
    Format.pp_print_string ppf name
  in
  Arg.conv (parse, print)

let backend_t =
  Arg.(
    value
    & opt backend_conv `Solution2
    & info [ "backend" ] ~docv:"NAME" ~doc:"Index backend (see $(b,--help) for the list).")

let file_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Segment file.")

let addr_conv =
  let parse s =
    match Server.addr_of_string s with Ok a -> Ok a | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, Server.pp_addr)

(* --connect takes a comma-separated endpoint list; with more than one
   the client fails over between them (health-probing each candidate),
   so a query keeps working across a primary kill + promote. *)
let addr_list_conv =
  let parse s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    if parts = [] then Error (`Msg "empty address list")
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match Server.addr_of_string p with
            | Ok a -> go (a :: acc) rest
            | Error m -> Error (`Msg m))
      in
      go [] parts
  in
  let print ppf addrs =
    Format.pp_print_string ppf
      (String.concat "," (List.map Server.addr_to_string addrs))
  in
  Arg.conv (parse, print)

let connect_t =
  Arg.(
    value
    & opt (some addr_list_conv) None
    & info [ "connect" ] ~docv:"ADDR[,ADDR...]"
        ~doc:
          "Run against a server at $(i,HOST:PORT) or $(i,unix:PATH) instead of building \
           an index in-process; the positional file argument is then unused. Several \
           comma-separated endpoints enable failover: a dead or draining endpoint is \
           skipped for the next one under the retry budget.")

(* query/batch/stats take the segment file positionally but can run
   remotely instead; the file is only demanded when there is no
   --connect. *)
let file_opt_t =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Segment file (not needed with $(b,--connect)).")

let require_file cmd = function
  | Some f -> f
  | None ->
      Printf.eprintf "%s: FILE argument required without --connect\n" cmd;
      exit 2

let degraded_note complete faults =
  if complete then ""
  else Printf.sprintf " [DEGRADED: partial result; %s]" (String.concat "; " faults)

let selectivity_t =
  Arg.(
    value & opt float 0.02
    & info [ "selectivity" ] ~docv:"F" ~doc:"Query height as a fraction of the span.")

(* ---------------- generate ---------------- *)

let generate family n span seed out =
  let rng = Rng.create seed in
  let segs =
    match family with
    | "roads" -> W.roads rng ~n ~span
    | "uniform" -> W.uniform rng ~n ~span
    | "grid-city" -> W.grid_city rng ~n ~span:(int_of_float span) ~max_len:(max 4 (int_of_float span / 20))
    | "temporal" -> W.temporal rng ~n ~keys:(max 1 (n / 50)) ~horizon:(int_of_float span)
    | "fans" -> W.fans rng ~n ~centers:(max 1 (n / 500)) ~span:(int_of_float span)
    | "long-spans" -> W.long_spans rng ~n ~span
    | other ->
        Printf.eprintf "unknown family %S\n" other;
        exit 2
  in
  (match out with
  | Some path ->
      Seg_file.save path segs;
      Printf.printf "wrote %d segments to %s\n" (Array.length segs) path
  | None -> Seg_file.to_channel stdout segs);
  0

let family_t =
  Arg.(
    value
    & opt string "roads"
    & info [ "family" ]
        ~doc:"Workload family: roads, uniform, grid-city, temporal, fans, long-spans.")

let n_t = Arg.(value & opt int 10_000 & info [ "n" ] ~docv:"N" ~doc:"Segment count.")

let span_t =
  Arg.(value & opt float 1000.0 & info [ "span" ] ~docv:"S" ~doc:"Coordinate extent.")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"emit a workload family as a segment file")
    Term.(const generate $ family_t $ n_t $ span_t $ seed_t $ out_t)

(* ---------------- stats ---------------- *)

let format_conv =
  Arg.enum [ ("text", `Text); ("json", `Json); ("prometheus", `Prometheus) ]

let format_t =
  Arg.(
    value & opt format_conv `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Metrics output format: $(b,text), $(b,json) or $(b,prometheus).")

let render_metrics = function
  | `Text ->
      if not (Obs.Control.enabled ()) then
        print_endline "observability disabled (set SEGDB_OBS=1 to enable)\n";
      print_string (Obs.Export.text Obs.Metrics.default);
      print_string (Obs.Export.phase_summary Obs.Metrics.default)
  | `Json -> print_string (Obs.Export.json Obs.Metrics.default)
  | `Prometheus ->
      if not (Obs.Control.enabled ()) then
        print_endline "# observability disabled (set SEGDB_OBS=1 to enable)";
      print_string (Obs.Export.prometheus Obs.Metrics.default)

let stats_local file backend block pool nqueries selectivity seed format =
  if not (Obs.Control.forced_off ()) then Obs.Control.enable ();
  let segs = Seg_file.load file in
  let t0 = Unix.gettimeofday () in
  let db = Db.create ~backend ~block ~pool_blocks:pool segs in
  let dt = Unix.gettimeofday () -. t0 in
  if nqueries > 0 then begin
    let span =
      Array.fold_left (fun acc (s : Segment.t) -> Float.max acc (Segment.max_x s)) 1.0 segs
    in
    let queries = W.segment_queries (Rng.create seed) ~n:nqueries ~span ~selectivity in
    Array.iter (fun q -> ignore (Db.count db q)) queries
  end;
  (match format with
  | `Text ->
      Printf.printf "backend:      %s\n" (Db.backend_name db);
      Printf.printf "segments:     %d\n" (Db.size db);
      Printf.printf "blocks:       %d  (n/B = %d)\n" (Db.block_count db)
        (Array.length segs / block);
      Printf.printf "build:        %.3fs, %s\n\n" dt
        (Format.asprintf "%a" Io_stats.pp (Db.io db))
  | `Json | `Prometheus -> ());
  render_metrics format;
  0

(* Every remote entry point funnels through this: a client failure
   (retries exhausted, server gone) is an exit-code-1 diagnostic, not
   an uncaught exception. *)
let with_client addrs f =
  match
    let c = Client.connect_many addrs in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)
  with
  | r -> r
  | exception Client.Error m ->
      Printf.eprintf "%s\n" m;
      1

(* The local/remote branch, shared by every subcommand that accepts
   --connect: remote work runs against a connected client, local work
   demands the positional file first. One place owns the dispatch
   instead of each subcommand re-growing its own. *)
let local_or_remote ~cmd ~connect ~file ~local ~remote =
  match connect with
  | Some addrs -> with_client addrs (fun c -> remote (Client.endpoint c) c)
  | None -> local (require_file cmd file)

(* Answer a batch on the process-wide execution pool — the same engine
   the network server submits frames to, so local and served batches
   share scheduling, deadline and degraded-result semantics. Returns
   the per-query results (partial after a deadline), the per-domain
   accounting, and an annotation for anything short of a complete
   answer. *)
let exec_batch ?(deadline_ms = 0) db qs ~domains =
  if domains > 1 then Exec.set_default_workers (domains - 1);
  let pool = Exec.default () in
  let readers = Array.init domains (fun _ -> Db.reader db) in
  let outcome, wstats =
    Exec.run ~readers pool db (Exec.request ~deadline_ms qs) ~domains
  in
  let results, note =
    match outcome with
    | Exec.Ok results -> (results, None)
    | Exec.Degraded (results, faults) ->
        (results, Some (Printf.sprintf "DEGRADED: %s" (String.concat "; " faults)))
    | Exec.Deadline_exceeded { partial; completed } ->
        ( partial,
          Some
            (Printf.sprintf "deadline of %dms exceeded: %d of %d queries answered"
               deadline_ms completed (Array.length qs)) )
    | Exec.Cancelled { partial; completed } ->
        ( partial,
          Some (Printf.sprintf "cancelled after %d of %d queries" completed (Array.length qs))
        )
    | Exec.Overloaded -> assert false (* [run] participates inline; it is never refused *)
  in
  (results, wstats, note)

(* One line per query, shared by the local and remote batch paths. *)
let print_results ~verbose qs results =
  Array.iteri
    (fun i ids ->
      Printf.printf "%s -> %d segments\n"
        (Format.asprintf "%a" Vquery.pp qs.(i))
        (List.length ids);
      if verbose then List.iter (Printf.printf "  %d\n") ids)
    results

let stats file connect backend block pool nqueries selectivity seed format =
  local_or_remote ~cmd:"stats" ~connect ~file
    ~remote:(fun _addr c ->
      (* the server's live registry, over the wire *)
      print_string (Client.stats c format);
      0)
    ~local:(fun file -> stats_local file backend block pool nqueries selectivity seed format)

let stats_queries_t =
  Arg.(
    value & opt int 0
    & info [ "queries" ] ~docv:"N"
        ~doc:"Run N random queries before reporting, so query-path metrics are populated.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "build an index and print structural statistics plus the observability metrics \
          (counters, histograms, per-phase spans); with $(b,--connect), fetch a running \
          server's metrics over the wire instead")
    Term.(
      const stats $ file_opt_t $ connect_t $ backend_t $ block_t $ pool_t $ stats_queries_t
      $ selectivity_t $ seed_t $ format_t)

(* ---------------- query ---------------- *)

let write_trace_json path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Export.trace_json events));
  Printf.printf "trace JSON written to %s\n" path

(* The satellite fix: --trace used to print an empty table with no
   explanation when nothing survived in the ring. *)
let empty_trace_note () =
  print_endline
    "note: no spans were recorded — observability is off, or the trace ring wrapped and \
     dropped this query's spans (see Trace.set_capacity)"

let query_local file backend block pool q verbose trace trace_json =
  let segs = Seg_file.load file in
  let db = Db.create ~backend ~block ~pool_blocks:pool segs in
  let rid = Obs.Trace.fresh_request_id () in
  if trace then begin
    Obs.Control.enable ();
    Obs.Trace.clear ()
  end;
  let io = Db.io db in
  Io_stats.reset io;
  let hits = Obs.Trace.with_request_id rid (fun () -> Db.query db q) in
  Printf.printf "%s -> %d segments (%s)\n"
    (Format.asprintf "%a" Vquery.pp q)
    (List.length hits)
    (Format.asprintf "%a" Io_stats.pp io);
  if verbose then
    List.iter (fun s -> Printf.printf "  %s\n" (Format.asprintf "%a" Segment.pp s)) hits;
  if trace then begin
    let events = Obs.Trace.events () in
    print_newline ();
    if events = [] then empty_trace_note ()
    else begin
      print_string (Obs.Export.trace_text events);
      print_newline ();
      print_string (Obs.Export.phase_summary Obs.Metrics.default)
    end;
    Option.iter (fun path -> write_trace_json path events) trace_json
  end;
  0

(* A traced remote query: ship the query with a client-generated
   request id, bracket the exchange in a local client.request span,
   then pull the server's spans for that id back and stitch the two
   rings into one timeline. *)
let query_remote_traced addr c q verbose trace_json =
  Obs.Control.enable ();
  Obs.Trace.clear ();
  let rid = Obs.Trace.fresh_request_id () in
  let r =
    Obs.Trace.with_request_id rid (fun () ->
        Obs.Trace.with_span "client.request" (fun () ->
            Client.batch_ex c ~request_id:rid ~trace:true [| q |]))
  in
  let ids = r.Db.Degraded.value.(0) in
  Printf.printf "%s -> %d segments%s (via %s, request %x)\n"
    (Format.asprintf "%a" Vquery.pp q)
    (List.length ids)
    (degraded_note r.Db.Degraded.complete r.Db.Degraded.faults)
    (Server.addr_to_string addr)
    rid;
  if verbose then List.iter (Printf.printf "  %d\n") ids;
  let remote = Client.fetch_trace c ~request_id:rid in
  let local =
    List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.request_id = rid) (Obs.Trace.events ())
  in
  print_newline ();
  if remote = [] then
    print_endline
      "note: the server returned no spans — its observability is off (serve without \
       --no-obs), or its trace ring wrapped past this request";
  let events = remote @ local in
  if events = [] then empty_trace_note ()
  else begin
    Printf.printf "request %x timeline (%d client spans, %d server spans):\n" rid
      (List.length local) (List.length remote);
    print_string (Obs.Export.timeline events)
  end;
  Option.iter (fun path -> write_trace_json path events) trace_json;
  0

let query file connect backend block pool x ylo yhi verbose trace trace_json =
  let q =
    Vquery.segment ~x
      ~ylo:(Option.value ylo ~default:neg_infinity)
      ~yhi:(Option.value yhi ~default:infinity)
  in
  local_or_remote ~cmd:"query" ~connect ~file
    ~remote:(fun addr c ->
      if trace then query_remote_traced addr c q verbose trace_json
      else begin
        let r = Client.query c q in
        Printf.printf "%s -> %d segments%s (via %s)\n"
          (Format.asprintf "%a" Vquery.pp q)
          (List.length r.Db.Degraded.value)
          (degraded_note r.Db.Degraded.complete r.Db.Degraded.faults)
          (Server.addr_to_string addr);
        if verbose then List.iter (Printf.printf "  %d\n") r.Db.Degraded.value;
        0
      end)
    ~local:(fun file -> query_local file backend block pool q verbose trace trace_json)

let x_t = Arg.(required & opt (some float) None & info [ "x" ] ~docv:"X" ~doc:"Query abscissa.")

let ylo_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "ylo" ] ~docv:"Y" ~doc:"Lower query bound (omit for a downward ray/line).")

let yhi_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "yhi" ] ~docv:"Y" ~doc:"Upper query bound (omit for an upward ray/line).")

let verbose_t = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print matched segments.")

let trace_t =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Trace the query pipeline: print every recorded span (descent, PST, interval \
           tree, slab tree) with durations and block counts, plus the per-phase summary. \
           With $(b,--connect), the query ships with a client-generated request id, the \
           server's spans for it are fetched back, and the stitched \
           client→server→storage timeline is printed.")

let trace_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "With $(b,--trace): also write the events as Chrome trace-event JSON \
           (loadable in Perfetto or chrome://tracing).")

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"run one vertical line/ray/segment query, locally or remotely")
    Term.(
      const query $ file_opt_t $ connect_t $ backend_t $ block_t $ pool_t $ x_t $ ylo_t
      $ yhi_t $ verbose_t $ trace_t $ trace_json_t)

(* ---------------- compare ---------------- *)

let compare_backends file block pool nqueries selectivity seed =
  let segs = Seg_file.load file in
  let span =
    Array.fold_left (fun acc (s : Segment.t) -> Float.max acc (Segment.max_x s)) 1.0 segs
  in
  let queries = W.segment_queries (Rng.create seed) ~n:nqueries ~span ~selectivity in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s: %d queries, selectivity %.3f" file nqueries selectivity)
      ~columns:[ "backend"; "blocks"; "mean io"; "max io"; "mean t" ]
  in
  List.iter
    (fun (name, backend) ->
      let db = Db.create ~backend ~block ~pool_blocks:pool segs in
      let io = Db.io db in
      let st = Segdb_util.Stats.create () and out = Segdb_util.Stats.create () in
      Array.iter
        (fun q ->
          let before = Io_stats.snapshot io in
          let k = Db.count db q in
          let d = Io_stats.diff before (Io_stats.snapshot io) in
          Segdb_util.Stats.add st (float_of_int (Io_stats.snapshot_total d));
          Segdb_util.Stats.add out (float_of_int k))
        queries;
      Table.add_row table
        [
          name;
          Table.cell_int (Db.block_count db);
          Table.cell_float ~decimals:1 (Segdb_util.Stats.mean st);
          Table.cell_float ~decimals:0 (Segdb_util.Stats.max st);
          Table.cell_float ~decimals:1 (Segdb_util.Stats.mean out);
        ])
    Db.all_backends;
  Table.print table;
  0

let nqueries_t =
  Arg.(value & opt int 50 & info [ "queries" ] ~docv:"N" ~doc:"Number of random queries.")

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"run a query workload across all backends")
    Term.(const compare_backends $ file_t $ block_t $ pool_t $ nqueries_t $ selectivity_t $ seed_t)

(* ---------------- batch ---------------- *)

(* One query per line: "X" (full line), "X YLO" (upward ray), or
   "X YLO YHI" (bounded segment). float_of_string accepts "inf" and
   "-inf", so unbounded ends can also be written explicitly. Blank
   lines and "#" comments are skipped. *)
let parse_queries name ic =
  let acc = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then begin
         let fields =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
         in
         match List.map float_of_string fields with
         | [ x ] -> acc := Vquery.line ~x :: !acc
         | [ x; ylo ] -> acc := Vquery.ray_up ~x ~ylo :: !acc
         | [ x; ylo; yhi ] -> acc := Vquery.segment ~x ~ylo ~yhi :: !acc
         | _ | (exception Failure _) ->
             Printf.eprintf "%s:%d: expected X [YLO [YHI]], got %S\n" name !lineno line;
             exit 2
       end
     done
   with End_of_file -> ());
  Array.of_list (List.rev !acc)

let load_queries path =
  if path = "-" then parse_queries "<stdin>" stdin
  else begin
    let ic = try open_in path with Sys_error m -> Printf.eprintf "%s\n" m; exit 2 in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_queries path ic)
  end

(* --slow-ms on a local batch: arm the threshold for the run, dump
   whatever cleared it afterwards. (A separate `segdb_cli slowlog`
   invocation is a fresh process with an empty ring — the local dump
   has to happen here; the subcommand is for servers.) *)
let dump_local_slowlog () =
  if Obs.Slowlog.enabled () then begin
    let es = Obs.Slowlog.entries () in
    if es <> [] then begin
      print_newline ();
      print_string (Obs.Slowlog.to_text es)
    end
  end

let batch_local file backend block pool domains deadline_ms qs verbose =
  let segs = Seg_file.load file in
  let db = Db.create ~backend ~block ~pool_blocks:pool segs in
  let t0 = Unix.gettimeofday () in
  let results, wstats, note = exec_batch ~deadline_ms db qs ~domains in
  let dt = Unix.gettimeofday () -. t0 in
  print_results ~verbose qs results;
  let reads = Array.fold_left (fun acc (w : Db.worker_stats) -> acc + w.reads) 0 wstats in
  let answered = Array.fold_left (fun acc (w : Db.worker_stats) -> acc + w.queries) 0 wstats in
  Printf.printf "%d queries, %d domains (pool of %d): %.3fs (%.0f queries/sec, %d block reads)\n"
    (Array.length qs) domains
    (Exec.size (Exec.default ()))
    dt
    (float_of_int answered /. Float.max dt 1e-9)
    reads;
  (match note with None -> () | Some n -> Printf.printf "note: %s\n" n);
  let table =
    Table.create ~title:"per-domain readers"
      ~columns:[ "worker"; "queries"; "block reads"; "cache hits"; "cache misses" ]
  in
  Array.iter
    (fun (w : Db.worker_stats) ->
      Table.add_row table
        [
          Table.cell_int w.worker;
          Table.cell_int w.queries;
          Table.cell_int w.reads;
          Table.cell_int w.cache_hits;
          Table.cell_int w.cache_misses;
        ])
    wstats;
  Table.print table;
  dump_local_slowlog ();
  0

let domains_t =
  Arg.(
    value & opt int 4
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains answering the batch.")

let batch_deadline_t =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Budget for the whole batch (local execution only; 0 disables). A batch that \
           runs past it stops issuing block reads at the next cancellation point and \
           reports the queries it completed — partial answers, exit status 0.")

let batch file connect backend block pool domains deadline_ms queries_file verbose slow_ms =
  let qs = load_queries queries_file in
  if Array.length qs = 0 then begin
    Printf.eprintf "%s: no queries\n" queries_file;
    exit 2
  end;
  Option.iter Obs.Slowlog.set_threshold_ms slow_ms;
  local_or_remote ~cmd:"batch" ~connect ~file
    ~remote:(fun addr c ->
      let t0 = Unix.gettimeofday () in
      let r = Client.batch c qs in
      let dt = Unix.gettimeofday () -. t0 in
      print_results ~verbose qs r.Db.Degraded.value;
      Printf.printf "%d queries via %s: %.3fs (%.0f queries/sec)%s\n" (Array.length qs)
        (Server.addr_to_string addr) dt
        (float_of_int (Array.length qs) /. Float.max dt 1e-9)
        (degraded_note r.Db.Degraded.complete r.Db.Degraded.faults);
      0)
    ~local:(fun file -> batch_local file backend block pool domains deadline_ms qs verbose)

let queries_file_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "queries-file"; "q" ] ~docv:"FILE"
        ~doc:
          "Query file: one query per line as $(i,X) (vertical line), $(i,X YLO) (upward \
           ray) or $(i,X YLO YHI) (bounded segment); blank lines and # comments ignored. \
           $(b,-) reads the queries from stdin.")

let slow_ms_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Arm the slow-query log at MS milliseconds (0 records every request; negative \
           disables; default: the $(b,SEGDB_SLOW_MS) environment variable). A local \
           batch dumps the records it collected after the run; a server exposes its \
           ring via $(b,segdb_cli slowlog --connect).")

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "answer a file of vertical queries on the persistent execution pool \
          ($(b,Segdb_exec)), fanning the batch across worker domains with private read \
          contexts and an optional deadline — or, with $(b,--connect), ship the batch to \
          a server as one frame")
    Term.(
      const batch $ file_opt_t $ connect_t $ backend_t $ block_t $ pool_t $ domains_t
      $ batch_deadline_t $ queries_file_t $ verbose_t $ slow_ms_t)

(* ---------------- save / open / recover ---------------- *)

let no_image_t =
  Arg.(
    value & flag
    & info [ "no-image" ]
        ~doc:
          "Omit (on $(b,save)) or ignore (on $(b,open)) the marshaled index image; the \
           snapshot is then opened by rebuilding from the segment section.")

let wal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"LOG" ~doc:"Write-ahead log to attach (created if absent).")

let save file out backend block pool no_image =
  let segs = Seg_file.load file in
  let db = Db.create ~backend ~block ~pool_blocks:pool segs in
  let t0 = Unix.gettimeofday () in
  Db.save ~image:(not no_image) db out;
  Printf.printf "wrote %s: %d segments, backend %s, %d bytes (%.3fs)\n" out (Db.size db)
    (Db.backend_name db)
    (Unix.stat out).Unix.st_size
    (Unix.gettimeofday () -. t0);
  0

let snap_out_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"SNAP" ~doc:"Snapshot file to write.")

let save_cmd =
  Cmd.v
    (Cmd.info "save" ~doc:"build an index over a segment file and snapshot it to disk")
    Term.(const save $ file_t $ snap_out_t $ backend_t $ block_t $ pool_t $ no_image_t)

let snap_t =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SNAP" ~doc:"Snapshot file.")

let open_snapshot_exn snap no_image wal print_ids x ylo yhi =
  let t0 = Unix.gettimeofday () in
  let db, mode = Db.open_db_mode ~use_image:(not no_image) snap in
  let dt = Unix.gettimeofday () -. t0 in
  let mode_name = match mode with Db.Restored_image -> "image" | Db.Rebuilt -> "rebuild" in
  let replayed = match wal with None -> 0 | Some path -> Db.attach_wal db path in
  Printf.printf "opened %s via %s in %.3fs: backend %s, %d segments%s\n" snap mode_name dt
    (Db.backend_name db) (Db.size db)
    (if wal = None then "" else Printf.sprintf ", %d WAL records replayed" replayed);
  (match x with
  | None -> ()
  | Some x ->
      let q =
        Vquery.segment ~x
          ~ylo:(Option.value ylo ~default:neg_infinity)
          ~yhi:(Option.value yhi ~default:infinity)
      in
      let io = Db.io db in
      Io_stats.reset io;
      let r = Db.query_safe db q in
      let ids =
        List.sort compare (List.map (fun (s : Segment.t) -> s.Segment.id) r.Db.Degraded.value)
      in
      Printf.printf "%s -> %d segments%s (%s)\n"
        (Format.asprintf "%a" Vquery.pp q)
        (List.length ids)
        (if r.Db.Degraded.complete then ""
         else
           Printf.sprintf " [DEGRADED: partial result; %s]"
             (String.concat "; " r.Db.Degraded.faults))
        (Format.asprintf "%a" Io_stats.pp io);
      List.iter (Printf.printf "%d\n") ids);
  if print_ids then
    Array.iter (fun (s : Segment.t) -> Printf.printf "%d\n" s.Segment.id) (Db.segments db);
  Db.detach_wal db;
  0

let open_snapshot snap no_image wal print_ids x ylo yhi =
  try open_snapshot_exn snap no_image wal print_ids x ylo yhi
  with Segdb_core.Snapshot.Corrupt_snapshot msg ->
    Printf.eprintf "corrupt snapshot: %s\n" msg;
    1

let ids_t =
  Arg.(value & flag & info [ "ids" ] ~doc:"Print every stored segment id, sorted.")

let qx_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "x" ] ~docv:"X" ~doc:"Run one query at this abscissa and print matching ids.")

let open_cmd =
  Cmd.v
    (Cmd.info "open"
       ~doc:
         "reopen a snapshot (restoring the saved index image when this binary wrote it, \
          rebuilding otherwise) and optionally replay a WAL and run a query")
    Term.(const open_snapshot $ snap_t $ no_image_t $ wal_t $ ids_t $ qx_t $ ylo_t $ yhi_t)

let rec recover snap wal checkpoint_out dry_run =
  try if dry_run then recover_dry snap wal else recover_exn snap wal checkpoint_out
  with Segdb_core.Snapshot.Corrupt_snapshot msg ->
    Printf.eprintf "corrupt snapshot: %s\n" msg;
    1

(* Non-mutating preview: the WAL is scanned (never truncated), the
   snapshot is not even opened. *)
and recover_dry snap wal =
  let a = Wal.audit wal in
  let ops, skipped = Db.scan_wal wal in
  let inserts =
    List.length (List.filter (function Db.Op_insert _ -> true | _ -> false) ops)
  in
  Printf.printf "%s: %d intact records in %d bytes (%d inserts, %d deletes%s)\n" wal
    a.Wal.audit_records a.Wal.valid_bytes inserts
    (List.length ops - inserts)
    (if skipped = 0 then ""
     else Printf.sprintf ", %d undecodable records skipped" skipped);
  if a.Wal.file_bytes > a.Wal.valid_bytes then
    Printf.printf "torn tail: %d trailing bytes would be truncated on open\n"
      (a.Wal.file_bytes - a.Wal.valid_bytes);
  Printf.printf "replay would apply %d operations to %s (dry run: nothing modified)\n"
    (List.length ops) snap;
  0

and recover_exn snap wal checkpoint_out =
  let db, mode = Db.open_db_mode snap in
  let mode_name = match mode with Db.Restored_image -> "image" | Db.Rebuilt -> "rebuild" in
  let replayed = Db.attach_wal db wal in
  Printf.printf "recovered %s (%s) + %s: %d segments, %d WAL records replayed\n" snap
    mode_name wal (Db.size db) replayed;
  (match checkpoint_out with
  | None -> ()
  | Some out ->
      Db.checkpoint db out;
      Printf.printf "checkpointed to %s; %s truncated\n" out wal);
  Db.detach_wal db;
  0

let recover_wal_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "wal" ] ~docv:"LOG" ~doc:"Write-ahead log to replay.")

let checkpoint_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"SNAP"
        ~doc:"After replay, snapshot the recovered index here and truncate the log.")

let dry_run_t =
  Arg.(
    value & flag
    & info [ "dry-run" ]
        ~doc:
          "Scan the log and print the surviving record count and what replay would \
           apply, mutating nothing (the torn tail is not truncated, the snapshot is \
           not opened).")

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:"replay a write-ahead log over a snapshot, optionally checkpointing the result")
    Term.(const recover $ snap_t $ recover_wal_t $ checkpoint_t $ dry_run_t)

(* ---------------- scrub / repair ---------------- *)

let sniff_magic path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> try really_input_string ic 8 with End_of_file -> "")

let scrub path wal queries =
  let findings = ref [] in
  let add src fs = List.iter (fun f -> findings := (src ^ ": " ^ f) :: !findings) fs in
  (match sniff_magic path with
  | "SEGFST01" ->
      Printf.printf "%s: file store\n" path;
      add path (File_store.Scrub.file path)
  | "SEGDBSNP" -> (
      Printf.printf "%s: snapshot\n" path;
      let fs, contents = Snapshot.salvage ~path in
      add path fs;
      match contents with
      | None -> ()
      | Some _ -> (
          (* the file-level checks passed enough to open; now check the
             index it holds *)
          match Db.open_db path with
          | db -> add path (Db.validate ~queries db)
          | exception Segdb_core.Snapshot.Corrupt_snapshot m -> add path [ m ]))
  | other -> add path [ Printf.sprintf "unrecognized magic %S" other ]);
  (match wal with
  | None -> ()
  | Some log ->
      let a = Wal.audit log in
      let _, skipped = Db.scan_wal log in
      Printf.printf "%s: %d intact records, %d/%d bytes valid\n" log a.Wal.audit_records
        a.Wal.valid_bytes a.Wal.file_bytes;
      if skipped > 0 then
        add log [ Printf.sprintf "%d intact records do not decode as operations" skipped ]);
  match List.rev !findings with
  | [] ->
      Printf.printf "clean\n";
      0
  | fs ->
      List.iter (Printf.printf "finding: %s\n") fs;
      Printf.printf "%d findings\n" (List.length fs);
      1

let scrub_queries_t =
  Arg.(
    value & opt int 25
    & info [ "queries" ] ~docv:"N"
        ~doc:
          "For snapshots: cross-check N seeded random queries against a naive index \
           (0 disables).")

let scrub_path_t =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"PATH" ~doc:"Store or snapshot file (detected by magic).")

let scrub_cmd =
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "verify a store or snapshot file: superblock and per-page CRCs, extent chains \
          vs the free pool, section checksums, index structural invariants (NCT, PST \
          order, interval containment, cascade bridges), plus an optional WAL audit; \
          exit 1 if anything is found")
    Term.(const scrub $ scrub_path_t $ wal_t $ scrub_queries_t)

let repair snap wal out =
  let fs, contents = Snapshot.salvage ~path:snap in
  List.iter (Printf.printf "salvage: %s\n") fs;
  match contents with
  | None ->
      Printf.eprintf "%s: segments section destroyed; nothing to rebuild from\n" snap;
      1
  | Some c ->
      let backend =
        match Db.backend_of_string c.Snapshot.header.Snapshot.backend with
        | Some b -> b
        | None ->
            Printf.printf "salvage: unknown backend %S, rebuilding as solution2\n"
              c.Snapshot.header.Snapshot.backend;
            `Solution2
      in
      let db =
        Db.create ~backend ~block:c.Snapshot.header.Snapshot.block
          ~pool_blocks:c.Snapshot.header.Snapshot.pool_blocks c.Snapshot.segments
      in
      let replayed =
        match wal with
        | None -> 0
        | Some log ->
            let ops, skipped = Db.scan_wal log in
            if skipped > 0 then
              Printf.printf "%s: %d undecodable records skipped\n" log skipped;
            Db.apply_wal_ops db ops;
            List.length ops
      in
      let remaining = Db.validate ~queries:16 db in
      List.iter (Printf.printf "validate: %s\n") remaining;
      Db.save db out;
      Printf.printf "repaired %s -> %s: %d segments, %d WAL operations replayed\n" snap
        out (Db.size db) replayed;
      if remaining = [] then 0 else 1

let repair_out_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"SNAP" ~doc:"Where to write the rebuilt snapshot.")

let repair_cmd =
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "rebuild a damaged snapshot from its surviving sections (a corrupt image \
          section costs only the fast open path; segments are authoritative), replay \
          an optional WAL over it, validate, and write a fresh snapshot; the inputs \
          are never modified")
    Term.(const repair $ scrub_path_t $ wal_t $ repair_out_t)

(* ---------------- verify ---------------- *)

let verify file =
  let segs = Seg_file.load file in
  let t0 = Unix.gettimeofday () in
  match Sweep.find_crossing segs with
  | None ->
      Printf.printf "%s: %d segments, NCT verified (%.3fs)\n" file (Array.length segs)
        (Unix.gettimeofday () -. t0);
      0
  | Some (a, b) ->
      Printf.printf "%s: CROSSING between %s and %s\n" file
        (Format.asprintf "%a" Segment.pp a)
        (Format.asprintf "%a" Segment.pp b);
      1

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "check that a segment file satisfies the NCT property (plane sweep, O(n log n); \
          exact on integer coordinates)")
    Term.(const verify $ file_t)

(* ---------------- serve / ping / shutdown ---------------- *)

let serve file addr backend block domains queue_depth deadline_ms no_obs slow_ms
    replica_of epoch idle_timeout_s metrics_addr sample_ms =
  if (not no_obs) && not (Obs.Control.forced_off ()) then Obs.Control.enable ();
  Option.iter Obs.Slowlog.set_threshold_ms slow_ms;
  let db = Server.open_or_build ~backend ~block file in
  let srv =
    Server.create ~domains ~queue_depth ~deadline_ms ~idle_timeout_s ?epoch ?replica_of
      ~db addr
  in
  let metrics_bound = Option.map (Server.serve_metrics srv) metrics_addr in
  (match metrics_bound with
  | Some ma ->
      Obs.Sampler.start ~interval_ms:sample_ms ();
      Printf.printf "metrics on %s (/metrics, /healthz, /varz; sampling every %dms)\n%!"
        (Server.addr_to_string ma) sample_ms
  | None -> ());
  let on_signal _ = Server.stop srv in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  let repl = Server.replication srv in
  (* the bound address goes out flushed so scripts can scrape a
     kernel-assigned port before the first client connects *)
  Printf.printf
    "serving %s on %s as %s (epoch %d): backend %s, %d segments, pool of %d domains \
     (queue %d, deadline %dms)\n\
     %!"
    file
    (Server.addr_to_string (Server.bound_addr srv))
    (Replication.role_name (Replication.role repl))
    (Replication.epoch repl)
    (Db.backend_name db) (Db.size db)
    (Exec.size (Server.pool srv))
    queue_depth deadline_ms;
  Server.run srv;
  if metrics_bound <> None then Obs.Sampler.stop ();
  Printf.printf "drained: %d requests served\n"
    (Obs.Metrics.value (Obs.Metrics.counter Obs.Metrics.default "net.requests"));
  0

let serve_addr_t =
  Arg.(
    value
    & opt addr_conv (Server.Tcp ("127.0.0.1", 0))
    & info [ "addr"; "listen" ] ~docv:"ADDR"
        ~doc:
          "Listen address: $(i,HOST:PORT) or $(i,unix:PATH). Port 0 (the default) asks \
           the kernel for a free port; the bound address is printed on startup.")

let serve_domains_t =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains answering queries.")

let queue_depth_t =
  Arg.(
    value & opt int 128
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:
          "Bound on queued requests; past it the server answers $(i,overloaded) instead \
           of buffering without limit.")

let deadline_ms_t =
  Arg.(
    value & opt int 5000
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request budget from the moment it is queued; a request still waiting past \
           it is answered $(i,deadline exceeded) without being executed (0 disables).")

let no_obs_t =
  Arg.(
    value & flag
    & info [ "no-obs" ]
        ~doc:
          "Leave observability off (it is enabled by default when serving, so the \
           $(i,stats) frame has something to report).")

let replica_of_t =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "replica-of" ] ~docv:"ADDR"
        ~doc:
          "Start as a read-only replica of the primary at $(docv): subscribe to its \
           WAL stream, apply pushed records, catch up by snapshot when joining late \
           or after a partition. Writes are refused with $(i,not primary) until \
           $(b,segdb_cli promote) turns this node into a primary at a fenced epoch.")

let epoch_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"N"
        ~doc:
          "Seed the replication fencing epoch (default: 1 for a primary, 0 for a \
           replica). Nodes refuse replication frames from a lower epoch.")

let idle_timeout_s_t =
  Arg.(
    value & opt float 0.
    & info [ "idle-timeout-s" ] ~docv:"S"
        ~doc:
          "Reap connections with no traffic and no in-flight requests for $(docv) \
           seconds (0 = never). Subscribed replicas are exempt.")

let metrics_addr_t =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "metrics-addr" ] ~docv:"ADDR"
        ~doc:
          "Also serve HTTP monitoring endpoints on $(docv): $(b,/metrics) (Prometheus \
           exposition with rate and window gauges), $(b,/healthz) (role, epoch, LSN, \
           replication lag; 200 healthy / 503 stalled) and $(b,/varz) (the sampler's \
           time-series ring as JSON). Starts the background sampler.")

let sample_ms_t =
  Arg.(
    value & opt int 1000
    & info [ "sample-ms" ] ~docv:"MS"
        ~doc:
          "Sampler interval: how often the background sampler snapshots the metrics \
           registry to compute per-interval rates and windowed percentiles (only \
           meaningful with $(b,--metrics-addr)).")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "serve a segment file or snapshot over the binary wire protocol: an accept \
          loop submits decoded frames to a persistent $(b,Segdb_exec) pool (bounded \
          admission, per-request deadlines, cooperative cancellation); SIGTERM/SIGINT \
          or a $(i,shutdown) frame drains gracefully; with $(b,--replica-of) the node \
          serves reads while tailing a primary's WAL stream; with $(b,--metrics-addr) \
          it also exports $(b,/metrics), $(b,/healthz) and $(b,/varz) over HTTP")
    Term.(
      const serve $ file_t $ serve_addr_t $ backend_t $ block_t $ serve_domains_t
      $ queue_depth_t $ deadline_ms_t $ no_obs_t $ slow_ms_t $ replica_of_t $ epoch_t
      $ idle_timeout_s_t $ metrics_addr_t $ sample_ms_t)

let server_pos_t =
  Arg.(
    required
    & pos 0 (some addr_conv) None
    & info [] ~docv:"ADDR" ~doc:"Server address: $(i,HOST:PORT) or $(i,unix:PATH).")

let ping_server addr count =
  with_client [ addr ] (fun c ->
      for _ = 1 to max 1 count do
        let t0 = Unix.gettimeofday () in
        Client.ping c;
        Printf.printf "pong from %s in %.2fms\n"
          (Server.addr_to_string addr)
          ((Unix.gettimeofday () -. t0) *. 1e3)
      done;
      0)

let ping_count_t =
  Arg.(value & opt int 1 & info [ "count"; "c" ] ~docv:"N" ~doc:"Number of pings.")

let ping_cmd =
  Cmd.v
    (Cmd.info "ping" ~doc:"round-trip a ping frame against a running server")
    Term.(const ping_server $ server_pos_t $ ping_count_t)

let shutdown_server addr =
  with_client [ addr ] (fun c ->
      Client.shutdown c;
      Printf.printf "server at %s draining\n" (Server.addr_to_string addr);
      0)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "send a shutdown frame: the server stops accepting, answers what is queued, \
          and exits")
    Term.(const shutdown_server $ server_pos_t)

(* ---------------- replication: promote / repl-status / insert / delete ---------------- *)

let promote_server addr epoch =
  with_client [ addr ] (fun c ->
      let e = Client.promote ?epoch c in
      Printf.printf "%s is primary at epoch %d\n" (Server.addr_to_string addr) e;
      0)

let promote_epoch_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"N"
        ~doc:
          "Force the fenced epoch (default: bump the node's current epoch by one). A \
           non-advancing epoch is refused with $(i,fenced).")

let promote_cmd =
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "turn a replica into a writable primary at a higher fenced epoch; a revived \
          stale primary is then refused by every node that saw the new epoch. \
          Idempotent on a node that is already primary.")
    Term.(const promote_server $ server_pos_t $ promote_epoch_t)

let repl_status_server addr =
  with_client [ addr ] (fun c ->
      let st = Client.repl_status c in
      Printf.printf "%s: role=%s epoch=%d lsn=%d last-progress %.1fs ago\n"
        (Server.addr_to_string addr)
        st.Segdb_net.Wire.role st.Segdb_net.Wire.epoch st.Segdb_net.Wire.lsn
        (float_of_int st.Segdb_net.Wire.progress_ms /. 1e3);
      List.iter
        (fun { Segdb_net.Wire.peer; acked_lsn; sent_lsn } ->
          Printf.printf "  replica %s acked lsn %d, sent lsn %d (lag %d)\n" peer
            acked_lsn sent_lsn
            (st.Segdb_net.Wire.lsn - acked_lsn))
        st.Segdb_net.Wire.peers;
      0)

let repl_status_cmd =
  Cmd.v
    (Cmd.info "repl-status"
       ~doc:
         "print a node's replication standing: role, fencing epoch, committed LSN, \
          time since the stream last made progress, and each subscribed replica's \
          acknowledged and sent cursors")
    Term.(const repl_status_server $ server_pos_t)

let seg_of_args id x1 y1 x2 y2 = Segment.make ~id (x1, y1) (x2, y2)

let insert_server addr id x1 y1 x2 y2 =
  with_client [ addr ] (fun c ->
      let lsn, changed = Client.insert c (seg_of_args id x1 y1 x2 y2) in
      Printf.printf "%s: id %d at lsn %d%s\n"
        (Server.addr_to_string addr)
        id lsn
        (if changed then "" else " (already present)");
      0)

let delete_server addr id x1 y1 x2 y2 =
  with_client [ addr ] (fun c ->
      let lsn, changed = Client.delete c (seg_of_args id x1 y1 x2 y2) in
      Printf.printf "%s: id %d at lsn %d%s\n"
        (Server.addr_to_string addr)
        id lsn
        (if changed then "" else " (not found)");
      0)

let seg_id_t =
  Arg.(required & opt (some int) None & info [ "id" ] ~docv:"ID" ~doc:"Segment id.")

let coord_t names doc =
  Arg.(required & opt (some float) None & info names ~docv:"F" ~doc)

let x1_t = coord_t [ "x1" ] "First endpoint abscissa."
let y1_t = coord_t [ "y1" ] "First endpoint ordinate."
let x2_t = coord_t [ "x2" ] "Second endpoint abscissa."
let y2_t = coord_t [ "y2" ] "Second endpoint ordinate."

let insert_cmd =
  Cmd.v
    (Cmd.info "insert"
       ~doc:
         "insert one segment through a running primary (WAL-logged, replicated to \
          subscribers); a replica answers $(i,not primary)")
    Term.(const insert_server $ server_pos_t $ seg_id_t $ x1_t $ y1_t $ x2_t $ y2_t)

let delete_cmd =
  Cmd.v
    (Cmd.info "delete"
       ~doc:
         "delete one segment through a running primary (WAL-logged, replicated to \
          subscribers); a replica answers $(i,not primary)")
    Term.(const delete_server $ server_pos_t $ seg_id_t $ x1_t $ y1_t $ x2_t $ y2_t)

(* ---------------- slowlog ---------------- *)

let slowlog connect json =
  let fmt = if json then `Json else `Text in
  match connect with
  | Some addr -> with_client addr (fun c -> print_string (Client.slowlog c fmt); 0)
  | None ->
      prerr_endline
        "slowlog needs --connect: the log lives in the server process. For a local \
         batch, pass --slow-ms to `segdb_cli batch` and the log is dumped when the \
         batch finishes.";
      2

let slowlog_json_t =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Dump the log as a JSON array instead of a table.")

let slowlog_cmd =
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:
         "dump a running server's slow-query log (queries whose wall time crossed the \
          $(b,--slow-ms) threshold the server was started with, oldest first)")
    Term.(const slowlog $ connect_t $ slowlog_json_t)

(* ---------------- top ---------------- *)

module Ascii_plot = Segdb_util.Ascii_plot

(* One parsed exposition scrape. Plain samples are keyed by metric name
   with labels stripped; histogram buckets keep (base name, le,
   cumulative count) rows so two scrapes can be diffed into a window.
   Parsing the exposition text (rather than a bespoke frame) is what
   lets --connect (the wire Stats frame) and --metrics-addr (HTTP
   /metrics) share one data path. *)
type scrape = {
  values : (string * float) list;
  buckets : (string * float * float) list;
}

let parse_le line from =
  let tag = "le=\"" in
  let tl = String.length tag in
  let n = String.length line in
  let rec find i =
    if i + tl > n then None
    else if String.sub line i tl = tag then
      match String.index_from_opt line (i + tl) '"' with
      | Some j -> (
          match String.sub line (i + tl) (j - i - tl) with
          | "+Inf" -> Some Float.infinity
          | s -> float_of_string_opt s)
      | None -> None
    else find (i + 1)
  in
  find from

let parse_exposition text =
  let values = ref [] and buckets = ref [] in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some i, Some j -> Some (min i j)
          | Some i, None -> Some i
          | None, j -> j
        in
        match (name_end, String.rindex_opt line ' ') with
        | Some i, Some sp when sp > i -> (
            let name = String.sub line 0 i in
            match float_of_string_opt (String.sub line (sp + 1) (String.length line - sp - 1)) with
            | None -> ()
            | Some v ->
                if Filename.check_suffix name "_bucket" then (
                  let base = String.sub name 0 (String.length name - 7) in
                  match parse_le line i with
                  | Some le -> buckets := (base, le, v) :: !buckets
                  | None -> ())
                else values := (name, v) :: !values)
        | _ -> ())
    (String.split_on_char '\n' text);
  { values = List.rev !values; buckets = List.rev !buckets }

let get sc name = List.assoc_opt name sc.values

(* counter delta between scrapes; a reset (restart) shows as 0, not a
   negative rate *)
let delta prev cur name =
  match (get prev name, get cur name) with
  | Some a, Some b when b >= a -> Some (b -. a)
  | Some _, Some _ -> Some 0.0
  | _, _ -> None

let bucket_series sc name =
  List.filter_map (fun (b, le, c) -> if b = name then Some (le, c) else None) sc.buckets

(* cumulative count at [le]: the value of the largest emitted bound at
   or below it (cumulative series are monotone in le) *)
let cum_at series le =
  List.fold_left (fun acc (l, c) -> if l <= le then Float.max acc c else acc) 0.0 series

(* percentile of the traffic that landed between the two scrapes, by
   diffing the cumulative bucket series and interpolating inside the
   landing bucket *)
let window_percentile prev cur name p =
  let cs = bucket_series cur name in
  if cs = [] then None
  else begin
    let ps = bucket_series prev name in
    let adj = List.map (fun (le, c) -> (le, Float.max 0.0 (c -. cum_at ps le))) cs in
    let total = List.fold_left (fun acc (_, c) -> Float.max acc c) 0.0 adj in
    if total <= 0.0 then None
    else begin
      let rank = p *. total in
      let rec walk lo lo_cum = function
        | [] -> Some lo
        | (le, c) :: rest ->
            if c >= rank then
              if Float.is_finite le then
                let frac = if c > lo_cum then (rank -. lo_cum) /. (c -. lo_cum) else 1.0 in
                Some (lo +. (frac *. (le -. lo)))
              else Some lo
            else walk le c rest
      in
      walk 0.0 0.0 adj
    end
  end

let max_with_prefix sc prefix =
  List.fold_left
    (fun acc (n, v) ->
      if String.length n >= String.length prefix && String.sub n 0 (String.length prefix) = prefix
      then Some (Float.max (Option.value acc ~default:0.0) v)
      else acc)
    None sc.values

let find_sub hay sub =
  let nh = String.length hay and ns = String.length sub in
  let rec go i = if i + ns > nh then None else if String.sub hay i ns = sub then Some i else go (i + 1) in
  go 0

(* minimal HTTP GET against the monitoring exporter *)
let http_get sa path =
  let dom = match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect fd sa;
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let b = Bytes.of_string req in
      let off = ref 0 in
      while !off < Bytes.length b do
        off := !off + Unix.write fd b !off (Bytes.length b - !off)
      done;
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let body =
        match find_sub raw "\r\n\r\n" with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> raw
      in
      match String.index_opt raw ' ' with
      | Some i when String.length raw >= i + 4 && String.sub raw (i + 1) 3 = "200" -> body
      | _ ->
          failwith
            (Printf.sprintf "GET %s: %s" path
               (match String.index_opt raw '\r' with
               | Some j -> String.sub raw 0 j
               | None -> "no response")))

let top_history_len = 60

let push_history r v =
  r := v :: !r;
  let rec take k = function x :: tl when k > 0 -> x :: take (k - 1) tl | _ -> [] in
  r := take top_history_len !r

let spark r = Ascii_plot.sparkline ~width:30 (List.rev !r)

let top connect metrics_addr interval_ms iterations no_clear =
  let interval_s = Float.max 0.05 (float_of_int interval_ms /. 1e3) in
  let source, fetch, cleanup =
    match (connect, metrics_addr) with
    | Some addrs, _ ->
        let c = Client.connect_many addrs in
        ( Server.addr_to_string (Client.endpoint c),
          (fun () -> Client.stats c `Prometheus),
          fun () -> Client.close c )
    | None, Some ma ->
        let sa = Server.sockaddr_of ma in
        (Server.addr_to_string ma, (fun () -> http_get sa "/metrics"), fun () -> ())
    | None, None ->
        Printf.eprintf "top: pass --connect ADDR or --metrics-addr ADDR\n";
        exit 2
  in
  let h_qps = ref [] and h_p99 = ref [] and h_hit = ref [] and h_lag = ref [] in
  let render prev cur dt =
    let fmt_opt f = function Some v -> f v | None -> "-" in
    let f1 v = Printf.sprintf "%.1f" v in
    let rate name = Option.map (fun d -> d /. dt) (delta prev cur name) in
    let qps = rate "segdb_net_requests" in
    Option.iter (push_history h_qps) qps;
    let p50 = window_percentile prev cur "segdb_net_request_ns" 0.50 in
    let p99 = window_percentile prev cur "segdb_net_request_ns" 0.99 in
    Option.iter (fun v -> push_history h_p99 (v /. 1e3)) p99;
    let hit =
      match (delta prev cur "segdb_cache_hits", delta prev cur "segdb_cache_misses") with
      | Some h, Some m when h +. m > 0.0 -> Some (100.0 *. h /. (h +. m))
      | _ -> None
    in
    Option.iter (push_history h_hit) hit;
    let lag = max_with_prefix cur "segdb_repl_lag_records_" in
    Option.iter (push_history h_lag) lag;
    let role =
      match get cur "segdb_repl_is_primary" with
      | Some 1.0 -> "primary"
      | Some _ -> "replica"
      | None -> "?"
    in
    if not no_clear then print_string "\x1b[2J\x1b[H";
    Printf.printf "segdb top — %s — %s epoch %s lsn %s — window %.1fs\n" source role
      (fmt_opt (fun v -> Printf.sprintf "%.0f" v) (get cur "segdb_repl_epoch"))
      (fmt_opt (fun v -> Printf.sprintf "%.0f" v) (get cur "segdb_repl_last_lsn"))
      dt;
    let t = Table.create ~title:"serving" ~columns:[ "metric"; "now"; "trend" ] in
    Table.add_row t [ "queries/s"; fmt_opt f1 qps; spark h_qps ];
    Table.add_row t
      [
        "bytes in/s"; fmt_opt f1 (rate "segdb_net_bytes_in"); "";
      ];
    Table.add_row t
      [ "wal appends/s"; fmt_opt f1 (rate "segdb_wal_appends"); "" ];
    Table.add_row t [ "p50 us"; fmt_opt (fun v -> f1 (v /. 1e3)) p50; "" ];
    Table.add_row t [ "p99 us"; fmt_opt (fun v -> f1 (v /. 1e3)) p99; spark h_p99 ];
    Table.add_row t [ "cache hit %"; fmt_opt f1 hit; spark h_hit ];
    Table.add_row t
      [ "queue depth"; fmt_opt f1 (get cur "segdb_exec_queue_len"); "" ];
    Table.add_row t
      [
        "pool busy";
        Printf.sprintf "%s/%s"
          (fmt_opt (fun v -> Printf.sprintf "%.0f" v) (get cur "segdb_exec_pool_busy"))
          (fmt_opt (fun v -> Printf.sprintf "%.0f" v) (get cur "segdb_exec_pool_workers"));
        "";
      ];
    Table.add_row t
      [ "connections"; fmt_opt (fun v -> Printf.sprintf "%.0f" v) (get cur "segdb_net_connections"); "" ];
    Table.add_row t [ "repl lag"; fmt_opt (fun v -> Printf.sprintf "%.0f" v) lag; spark h_lag ];
    Table.add_row t
      [
        "repl idle s";
        fmt_opt (fun v -> f1 (v /. 1e3)) (get cur "segdb_repl_ms_since_progress");
        "";
      ];
    Table.add_row t
      [
        "heap Mwords";
        fmt_opt (fun v -> Printf.sprintf "%.1f" (v /. 1e6)) (get cur "segdb_runtime_heap_words");
        "";
      ];
    Table.add_row t
      [ "minor gc/s"; fmt_opt f1 (rate "segdb_runtime_minor_collections"); "" ];
    Table.print t;
    flush stdout
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let scrape () =
    let body = fetch () in
    if find_sub body "observability disabled" <> None then
      Printf.eprintf "warning: observability is off on the server; most panels will be empty\n";
    (Unix.gettimeofday (), parse_exposition body)
  in
  let rec loop prev rendered =
    if iterations > 0 && rendered >= iterations then 0
    else begin
      match scrape () with
      | exception (Failure m | Client.Error m) ->
          Printf.eprintf "top: scrape failed: %s\n" m;
          1
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "top: scrape failed: %s\n" (Unix.error_message e);
          1
      | at, cur ->
          let rendered =
            match prev with
            | Some (pat, p) ->
                render p cur (at -. pat);
                rendered + 1
            | None -> rendered
          in
          if iterations > 0 && rendered >= iterations then 0
          else begin
            Unix.sleepf interval_s;
            loop (Some (at, cur)) rendered
          end
    end
  in
  loop None 0

let top_interval_ms_t =
  Arg.(
    value & opt int 1000
    & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh interval between scrapes.")

let top_iterations_t =
  Arg.(
    value & opt int 0
    & info [ "iterations" ] ~docv:"N"
        ~doc:"Render $(docv) frames then exit (0 = run until interrupted).")

let top_no_clear_t =
  Arg.(
    value & flag
    & info [ "no-clear" ]
        ~doc:"Append frames instead of clearing the screen (for logs and tests).")

let top_metrics_addr_t =
  Arg.(
    value
    & opt (some addr_conv) None
    & info [ "metrics-addr" ] ~docv:"ADDR"
        ~doc:"Scrape a server's HTTP $(b,/metrics) endpoint instead of the wire protocol.")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "live dashboard over a running server: scrapes its metrics (the wire \
          $(i,stats) frame via $(b,--connect), or HTTP $(b,/metrics) via \
          $(b,--metrics-addr)), computes per-interval rates and windowed percentiles \
          client-side, and renders qps, latency, cache hit-rate, queue and pool \
          occupancy, replication lag and GC pressure with sparkline trends")
    Term.(
      const top $ connect_t $ top_metrics_addr_t $ top_interval_ms_t $ top_iterations_t
      $ top_no_clear_t)

(* ---------------- main ---------------- *)

let main_cmd =
  let doc = "segment database with vertical-segment-query indexes (EDBT'98 reproduction)" in
  Cmd.group (Cmd.info "segdb_cli" ~doc)
    [
      generate_cmd;
      stats_cmd;
      query_cmd;
      compare_cmd;
      batch_cmd;
      save_cmd;
      open_cmd;
      recover_cmd;
      scrub_cmd;
      repair_cmd;
      verify_cmd;
      serve_cmd;
      ping_cmd;
      shutdown_cmd;
      promote_cmd;
      repl_status_cmd;
      insert_cmd;
      delete_cmd;
      slowlog_cmd;
      top_cmd;
    ]

let () =
  Failpoint.arm_from_env ();
  Obs.Control.configure_from_env ();
  Obs.Log.configure_from_env ();
  Obs.Slowlog.configure_from_env ();
  exit (Cmd.eval' main_cmd)
