examples/sloped_queries.mli:
