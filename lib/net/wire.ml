open Segdb_geom
module Codec = Segdb_io.Codec
module Crc = Segdb_io.Crc
module Failpoint = Segdb_io.Failpoint
module Trace = Segdb_obs.Trace
module Seg_file = Segdb_core.Seg_file

type request =
  | Ping
  | Query of Vquery.t
  | Count of Vquery.t
  | Batch of Vquery.t array
  | Stats of [ `Text | `Json | `Prometheus ]
  | Shutdown
  | Batch_ex of { request_id : int; trace : bool; queries : Vquery.t array }
  | Trace_fetch of { request_id : int }
  | Slowlog of [ `Text | `Json ]
  | Insert of Segment.t
  | Delete of Segment.t
  | Repl_subscribe of { epoch : int; from_lsn : int }
  | Repl_ack of { epoch : int; lsn : int }
  | Repl_status
  | Promote of { epoch : int }

type error_code =
  | Overloaded
  | Deadline
  | Bad_request
  | Corrupt_frame
  | Server_error
  | Shutting_down
  | Not_primary
  | Fenced

type repl_peer = { peer : string; acked_lsn : int; sent_lsn : int }

type repl_status = {
  role : string;
  epoch : int;
  lsn : int;
  progress_ms : int;
  peers : repl_peer list;
}

type response =
  | Pong
  | Ids of { ids : int list; complete : bool; faults : string list }
  | Counted of int
  | Batch_ids of { results : int list array; complete : bool; faults : string list }
  | Stats_payload of string
  | Error of error_code * string
  | Shutdown_ack
  | Trace_events of Trace.event list
  | Slowlog_payload of string
  | Applied of { lsn : int; changed : bool }
  | Repl_records of { epoch : int; from_lsn : int; records : string list }
  | Repl_snapshot of { epoch : int; lsn : int; segments : Segment.t array }
  | Repl_status_payload of repl_status
  | Promoted of { epoch : int }

type protocol_error =
  | Truncated
  | Oversized of int
  | Crc_mismatch
  | Unknown_tag of int
  | Malformed of string

let max_frame = 1 lsl 24
let header_bytes = 8

let protocol_error_to_string = function
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes > %d max)" n max_frame
  | Crc_mismatch -> "frame CRC mismatch"
  | Unknown_tag t -> Printf.sprintf "unknown frame tag %d" t
  | Malformed m -> "malformed frame body: " ^ m

let pp_protocol_error ppf e = Format.pp_print_string ppf (protocol_error_to_string e)

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Deadline -> "deadline exceeded"
  | Bad_request -> "bad request"
  | Corrupt_frame -> "corrupt frame"
  | Server_error -> "server error"
  | Shutting_down -> "shutting down"
  | Not_primary -> "not primary"
  | Fenced -> "fenced (stale epoch)"

(* ---------------- payload codecs ---------------- *)

(* A query is three f64s; the infinite bounds of rays and lines travel
   as IEEE infinities, and decode re-routes through the matching
   [Vquery] constructor so the round-trip is exact. *)
let write_vquery b (q : Vquery.t) =
  Codec.W.f64 b q.Vquery.x;
  Codec.W.f64 b q.Vquery.ylo;
  Codec.W.f64 b q.Vquery.yhi

let read_vquery r =
  let x = Codec.R.f64 r in
  let ylo = Codec.R.f64 r in
  let yhi = Codec.R.f64 r in
  if Float.is_nan x then raise (Codec.Corrupt "NaN query abscissa");
  if ylo = Float.neg_infinity && yhi = Float.infinity then Vquery.line ~x
  else if yhi = Float.infinity then Vquery.ray_up ~x ~ylo
  else if ylo = Float.neg_infinity then Vquery.ray_down ~x ~yhi
  else Vquery.segment ~x ~ylo ~yhi

let vquery_codec : Vquery.t Codec.t = { Codec.write = write_vquery; read = read_vquery }
let vqueries_codec = Codec.array vquery_codec
let ids_codec = Codec.(list int)
let faults_codec = Codec.(list string)
let results_codec = Codec.(array (list int))

let fmt_to_tag = function `Text -> 0 | `Json -> 1 | `Prometheus -> 2

let fmt_of_tag = function
  | 0 -> `Text
  | 1 -> `Json
  | 2 -> `Prometheus
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown stats format %d" t))

let dump_fmt_to_tag = function `Text -> 0 | `Json -> 1

let dump_fmt_of_tag = function
  | 0 -> `Text
  | 1 -> `Json
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown slowlog format %d" t))

(* Trace events travel with every field explicit; [u64] holds any
   non-negative OCaml int, which all of them are by construction. *)
let write_event b (e : Trace.event) =
  Codec.W.u64 b e.Trace.seq;
  Codec.W.str b e.Trace.phase;
  Codec.W.u64 b e.Trace.depth;
  Codec.W.u64 b e.Trace.t0_ns;
  Codec.W.u64 b e.Trace.dur_ns;
  Codec.W.u64 b e.Trace.blocks;
  Codec.W.u64 b e.Trace.request_id;
  Codec.W.u64 b e.Trace.dom

let read_event r =
  let seq = Codec.R.u64 r in
  let phase = Codec.R.str r in
  let depth = Codec.R.u64 r in
  let t0_ns = Codec.R.u64 r in
  let dur_ns = Codec.R.u64 r in
  let blocks = Codec.R.u64 r in
  let request_id = Codec.R.u64 r in
  let dom = Codec.R.u64 r in
  { Trace.seq; phase; depth; t0_ns; dur_ns; blocks; request_id; dom }

let event_codec : Trace.event Codec.t = { Codec.write = write_event; read = read_event }
let events_codec = Codec.list event_codec

(* Replication payloads: records are opaque WAL record bytes (the
   [Segdb.op] encoding), snapshots carry the full segment set, peers
   carry a peer string with its acknowledged and last-sent LSNs. *)
let records_codec = Codec.(list string)

let write_repl_peer b { peer; acked_lsn; sent_lsn } =
  Codec.W.str b peer;
  Codec.W.u64 b acked_lsn;
  Codec.W.u64 b sent_lsn

let read_repl_peer r =
  let peer = Codec.R.str r in
  let acked_lsn = Codec.R.u64 r in
  let sent_lsn = Codec.R.u64 r in
  { peer; acked_lsn; sent_lsn }

let peers_codec = Codec.list { Codec.write = write_repl_peer; read = read_repl_peer }

let write_repl_status b (st : repl_status) =
  Codec.W.str b st.role;
  Codec.W.u64 b st.epoch;
  Codec.W.u64 b st.lsn;
  Codec.W.u64 b st.progress_ms;
  peers_codec.Codec.write b st.peers

let read_repl_status r =
  let role = Codec.R.str r in
  let epoch = Codec.R.u64 r in
  let lsn = Codec.R.u64 r in
  let progress_ms = Codec.R.u64 r in
  let peers = peers_codec.Codec.read r in
  { role; epoch; lsn; progress_ms; peers }

let code_to_tag = function
  | Overloaded -> 1
  | Deadline -> 2
  | Bad_request -> 3
  | Corrupt_frame -> 4
  | Server_error -> 5
  | Shutting_down -> 6
  | Not_primary -> 7
  | Fenced -> 8

let code_of_tag = function
  | 1 -> Overloaded
  | 2 -> Deadline
  | 3 -> Bad_request
  | 4 -> Corrupt_frame
  | 5 -> Server_error
  | 6 -> Shutting_down
  | 7 -> Not_primary
  | 8 -> Fenced
  | t -> raise (Codec.Corrupt (Printf.sprintf "unknown error code %d" t))

(* Request tags live below 128, response tags at or above — a stray
   response parsed as a request (or vice versa) is an Unknown_tag, not
   a confusion. *)

let request_payload req =
  let b = Buffer.create 64 in
  (match req with
  | Ping -> Codec.W.u8 b 1
  | Query q ->
      Codec.W.u8 b 2;
      write_vquery b q
  | Count q ->
      Codec.W.u8 b 3;
      write_vquery b q
  | Batch qs ->
      Codec.W.u8 b 4;
      vqueries_codec.Codec.write b qs
  | Stats fmt ->
      Codec.W.u8 b 5;
      Codec.W.u8 b (fmt_to_tag fmt)
  | Shutdown -> Codec.W.u8 b 6
  | Batch_ex { request_id; trace; queries } ->
      Codec.W.u8 b 7;
      Codec.W.u64 b request_id;
      Codec.bool.Codec.write b trace;
      vqueries_codec.Codec.write b queries
  | Trace_fetch { request_id } ->
      Codec.W.u8 b 8;
      Codec.W.u64 b request_id
  | Slowlog fmt ->
      Codec.W.u8 b 9;
      Codec.W.u8 b (dump_fmt_to_tag fmt)
  | Insert s ->
      Codec.W.u8 b 10;
      Seg_file.codec.Codec.write b s
  | Delete s ->
      Codec.W.u8 b 11;
      Seg_file.codec.Codec.write b s
  | Repl_subscribe { epoch; from_lsn } ->
      Codec.W.u8 b 12;
      Codec.W.u64 b epoch;
      Codec.W.u64 b from_lsn
  | Repl_ack { epoch; lsn } ->
      Codec.W.u8 b 13;
      Codec.W.u64 b epoch;
      Codec.W.u64 b lsn
  | Repl_status -> Codec.W.u8 b 14
  | Promote { epoch } ->
      Codec.W.u8 b 15;
      Codec.W.u64 b epoch);
  Buffer.contents b

let response_payload resp =
  let b = Buffer.create 64 in
  (match resp with
  | Pong -> Codec.W.u8 b 128
  | Ids { ids; complete; faults } ->
      Codec.W.u8 b 129;
      Codec.bool.Codec.write b complete;
      faults_codec.Codec.write b faults;
      ids_codec.Codec.write b ids
  | Counted n ->
      Codec.W.u8 b 130;
      Codec.W.u64 b n
  | Batch_ids { results; complete; faults } ->
      Codec.W.u8 b 131;
      Codec.bool.Codec.write b complete;
      faults_codec.Codec.write b faults;
      results_codec.Codec.write b results
  | Stats_payload s ->
      Codec.W.u8 b 132;
      Codec.W.str b s
  | Error (code, msg) ->
      Codec.W.u8 b 133;
      Codec.W.u8 b (code_to_tag code);
      Codec.W.str b msg
  | Shutdown_ack -> Codec.W.u8 b 134
  | Trace_events evs ->
      Codec.W.u8 b 135;
      events_codec.Codec.write b evs
  | Slowlog_payload s ->
      Codec.W.u8 b 136;
      Codec.W.str b s
  | Applied { lsn; changed } ->
      Codec.W.u8 b 137;
      Codec.W.u64 b lsn;
      Codec.bool.Codec.write b changed
  | Repl_records { epoch; from_lsn; records } ->
      Codec.W.u8 b 138;
      Codec.W.u64 b epoch;
      Codec.W.u64 b from_lsn;
      records_codec.Codec.write b records
  | Repl_snapshot { epoch; lsn; segments } ->
      Codec.W.u8 b 139;
      Codec.W.u64 b epoch;
      Codec.W.u64 b lsn;
      Seg_file.array_codec.Codec.write b segments
  | Repl_status_payload st ->
      Codec.W.u8 b 140;
      write_repl_status b st
  | Promoted { epoch } ->
      Codec.W.u8 b 141;
      Codec.W.u64 b epoch);
  Buffer.contents b

(* Total decoding: anything [Codec] or a [Vquery] constructor rejects
   becomes [Malformed]; an unconsumed suffix is [Malformed] too (frame
   boundaries are exact). *)
let decoding payload read_body =
  match
    let r = Codec.R.of_string payload in
    let tag = Codec.R.u8 r in
    match read_body r tag with
    | None -> Result.Error (Unknown_tag tag)
    | Some v ->
        if Codec.R.remaining r > 0 then
          Result.Error
            (Malformed (Printf.sprintf "%d trailing bytes" (Codec.R.remaining r)))
        else Result.Ok v
  with
  | v -> v
  | exception Codec.Corrupt m -> Result.Error (Malformed m)
  | exception Invalid_argument m -> Result.Error (Malformed m)

let decode_request payload =
  decoding payload (fun r tag ->
      match tag with
      | 1 -> Some Ping
      | 2 -> Some (Query (read_vquery r))
      | 3 -> Some (Count (read_vquery r))
      | 4 -> Some (Batch (vqueries_codec.Codec.read r))
      | 5 -> Some (Stats (fmt_of_tag (Codec.R.u8 r)))
      | 6 -> Some Shutdown
      | 7 ->
          let request_id = Codec.R.u64 r in
          let trace = Codec.bool.Codec.read r in
          let queries = vqueries_codec.Codec.read r in
          Some (Batch_ex { request_id; trace; queries })
      | 8 -> Some (Trace_fetch { request_id = Codec.R.u64 r })
      | 9 -> Some (Slowlog (dump_fmt_of_tag (Codec.R.u8 r)))
      | 10 -> Some (Insert (Seg_file.codec.Codec.read r))
      | 11 -> Some (Delete (Seg_file.codec.Codec.read r))
      | 12 ->
          let epoch = Codec.R.u64 r in
          let from_lsn = Codec.R.u64 r in
          Some (Repl_subscribe { epoch; from_lsn })
      | 13 ->
          let epoch = Codec.R.u64 r in
          let lsn = Codec.R.u64 r in
          Some (Repl_ack { epoch; lsn })
      | 14 -> Some Repl_status
      | 15 -> Some (Promote { epoch = Codec.R.u64 r })
      | _ -> None)

let decode_response payload =
  decoding payload (fun r tag ->
      match tag with
      | 128 -> Some Pong
      | 129 ->
          let complete = Codec.bool.Codec.read r in
          let faults = faults_codec.Codec.read r in
          let ids = ids_codec.Codec.read r in
          Some (Ids { ids; complete; faults })
      | 130 -> Some (Counted (Codec.R.u64 r))
      | 131 ->
          let complete = Codec.bool.Codec.read r in
          let faults = faults_codec.Codec.read r in
          let results = results_codec.Codec.read r in
          Some (Batch_ids { results; complete; faults })
      | 132 -> Some (Stats_payload (Codec.R.str r))
      | 133 ->
          let code = code_of_tag (Codec.R.u8 r) in
          let msg = Codec.R.str r in
          Some (Error (code, msg))
      | 134 -> Some Shutdown_ack
      | 135 -> Some (Trace_events (events_codec.Codec.read r))
      | 136 -> Some (Slowlog_payload (Codec.R.str r))
      | 137 ->
          let lsn = Codec.R.u64 r in
          let changed = Codec.bool.Codec.read r in
          Some (Applied { lsn; changed })
      | 138 ->
          let epoch = Codec.R.u64 r in
          let from_lsn = Codec.R.u64 r in
          let records = records_codec.Codec.read r in
          Some (Repl_records { epoch; from_lsn; records })
      | 139 ->
          let epoch = Codec.R.u64 r in
          let lsn = Codec.R.u64 r in
          let segments = Seg_file.array_codec.Codec.read r in
          Some (Repl_snapshot { epoch; lsn; segments })
      | 140 -> Some (Repl_status_payload (read_repl_status r))
      | 141 -> Some (Promoted { epoch = Codec.R.u64 r })
      | _ -> None)

(* ---------------- framing ---------------- *)

let frame payload =
  let b = Buffer.create (String.length payload + header_bytes) in
  Codec.W.u32 b (String.length payload);
  Codec.W.u32 b (Crc.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let encode_request req = frame (request_payload req)
let encode_response resp = frame (response_payload resp)

let decode_header s =
  let r = Codec.R.of_string s in
  let len = Codec.R.u32 r in
  let crc = Codec.R.u32 r in
  if len > max_frame then Result.Error (Oversized len) else Result.Ok (len, crc)

let check_payload ~crc payload =
  if Crc.string payload = crc then Result.Ok payload else Result.Error Crc_mismatch

(* ---------------- blocking fd transport ---------------- *)

let send fd s =
  (* the frame bytes are never reused, so handing the string's bytes to
     the (possibly bit-flipping) writer is safe *)
  Failpoint.Io.send_all fd (Bytes.of_string s) ~pos:0 ~len:(String.length s)

let wait_readable fd deadline =
  match deadline with
  | None -> ()
  | Some d ->
      let rec go () =
        let left = d -. Unix.gettimeofday () in
        if left <= 0.0 then raise (Unix.Unix_error (Unix.ETIMEDOUT, "net.recv", ""));
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "net.recv", ""))
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()

(* Fill [buf] up to [len]; a clean end-of-stream stops early. *)
let recv_exact deadline fd buf ~len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    wait_readable fd deadline;
    let n = Failpoint.Io.recv fd buf ~pos:!got ~len:(len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let recv ?timeout fd =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let hdr = Bytes.create header_bytes in
  if recv_exact deadline fd hdr ~len:header_bytes < header_bytes then Result.Error Truncated
  else
    match decode_header (Bytes.to_string hdr) with
    | Result.Error e -> Result.Error e
    | Result.Ok (len, crc) ->
        let payload = Bytes.create len in
        if recv_exact deadline fd payload ~len < len then Result.Error Truncated
        else check_payload ~crc (Bytes.to_string payload)
