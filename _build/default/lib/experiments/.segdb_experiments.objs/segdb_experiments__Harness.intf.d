lib/experiments/harness.mli: Io_stats Segdb_io Segdb_util
