test/t_workload.ml: Alcotest Array Float Fun Lseg QCheck QCheck_alcotest Segdb_geom Segdb_util Segdb_workload Segment Vquery
