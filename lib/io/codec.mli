(** Binary encoding for on-disk artifacts.

    Little-endian, length-prefixed, with no framing of its own — the
    consumers ({!File_store} pages, {!Wal} records, snapshot sections)
    add their own headers and CRCs. A codec pairs a writer into a
    [Buffer.t] with a reader over an immutable string; malformed input
    raises {!Corrupt} rather than returning partial values, so a CRC
    mismatch and a decode failure surface identically to callers. *)

exception Corrupt of string
(** Raised by readers on truncated or malformed input. *)

(** Low-level writers, appending to a [Buffer.t]. *)
module W : sig
  val u8 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit
  (** Lower 32 bits, little-endian. *)

  val u64 : Buffer.t -> int -> unit
  (** Full OCaml [int], sign-extended to 64 bits, little-endian. *)

  val f64 : Buffer.t -> float -> unit
  (** IEEE-754 bits, little-endian. *)

  val str : Buffer.t -> string -> unit
  (** [u32] byte length, then the raw bytes. *)
end

(** Low-level readers over a string with a cursor. *)
module R : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val f64 : t -> float
  val str : t -> string
  val raw : t -> int -> string
  (** [raw r n] reads exactly [n] bytes. *)
end

type 'a t = { write : Buffer.t -> 'a -> unit; read : R.t -> 'a }

val int : int t
val float : float t
val bool : bool t
val string : string t
val pair : 'a t -> 'b t -> ('a * 'b) t
val option : 'a t -> 'a option t
val array : 'a t -> 'a array t
val list : 'a t -> 'a list t

val encode : 'a t -> 'a -> string

val decode : 'a t -> string -> 'a
(** Raises {!Corrupt} on trailing bytes as well as on truncation. *)
