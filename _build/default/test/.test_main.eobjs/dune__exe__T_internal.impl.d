test/t_internal.ml: Alcotest Array Float List Lseg Printf QCheck QCheck_alcotest Segdb_geom Segdb_internal Segdb_util Segdb_workload Segment Vquery
