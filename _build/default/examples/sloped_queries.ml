(* Fixed-slope generalized queries via rotation.

   The paper indexes *vertical* query segments and notes that any other
   fixed angular coefficient reduces to it by rotating the coordinate
   axes (its footnote 1). This example makes that reduction concrete:
   the query family has slope 1/2, so we rotate the database once at
   build time and answer each sloped query as a vertical one.

   Run with: dune exec examples/sloped_queries.exe *)

open Segdb_geom
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module Rng = Segdb_util.Rng

let () =
  let slope = 0.5 in
  let span = 1000.0 in
  let segments = W.uniform (Rng.create 3) ~n:20_000 ~span in

  (* one rotation for the whole query family *)
  let rot = Transform.to_vertical ~slope in
  let rotated = Array.map (Transform.segment rot) segments in
  let db = Db.create ~backend:`Solution2 rotated in
  Printf.printf "indexed %d segments rotated so slope-%.2f queries become vertical\n"
    (Db.size db) slope;

  (* sloped query segments: from (x0, y0) along direction (1, slope) *)
  let sloped_queries =
    [ ((100.0, 200.0), 400.0); ((500.0, 100.0), 600.0); ((50.0, 800.0), 150.0) ]
  in
  List.iter
    (fun ((x0, y0), len) ->
      let p1 = (x0, y0) in
      let p2 = (x0 +. len, y0 +. (slope *. len)) in
      let q = Transform.vquery_of_segment rot p1 p2 in
      let hits = Db.query db q in
      (* sanity: check against a direct scan in original coordinates *)
      let oracle =
        Array.to_list segments
        |> List.filter (fun (s : Segment.t) ->
               let orient (ax, ay) (bx, by) (cx, cy) =
                 let d = ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax)) in
                 if d > 1e-9 then 1 else if d < -1e-9 then -1 else 0
               in
               let a = (s.Segment.x1, s.Segment.y1) and b = (s.Segment.x2, s.Segment.y2) in
               orient a b p1 * orient a b p2 <= 0 && orient p1 p2 a * orient p1 p2 b <= 0)
      in
      Printf.printf
        "query from (%.0f, %.0f), length %.0f along slope %.2f: %d crossings (scan agrees: %b)\n"
        x0 y0 len slope (List.length hits)
        (List.length hits = List.length oracle))
    sloped_queries
