test/t_geom.ml: Alcotest Array Float List Lseg Predicates Printf QCheck QCheck_alcotest Segdb_geom Segment Transform Vquery
