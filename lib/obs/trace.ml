(* Trace spans: phase-labelled intervals of the query pipeline,
   recorded into a fixed-size ring buffer and summarized into the
   default registry's per-phase histograms.

   A span is entered with the current block-read count of whatever
   Io_stats the caller is charged against and exited with the same
   counter read again, so each event carries both wall time and blocks
   touched during the phase. Nesting depth is tracked per domain (a
   DLS counter), which lets the dump indent a query's pipeline —
   first-level descent, then the PST / interval-tree / slab probes it
   dispatches — without the probes knowing about each other.

   When tracing is off ([Control.enabled () = false]) [enter] returns
   the shared [none] span and [exit] returns immediately: no
   allocation, no lock, no clock read. When on, ring pushes and
   histogram updates share one mutex, making span exit safe from
   concurrent query workers. *)

type event = {
  seq : int;
  phase : string;
  depth : int;
  t0_ns : int;
  dur_ns : int;
  blocks : int;
}

type span = { sphase : string; st0 : int; sblocks : int; sdepth : int }

let none = { sphase = ""; st0 = 0; sblocks = 0; sdepth = 0 }

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ---------------- the ring ---------------- *)

let mu = Mutex.create ()
let default_capacity = 4096
let ring : event option array ref = ref (Array.make default_capacity None)
let next_seq = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  locked (fun () ->
      ring := Array.make n None;
      next_seq := 0)

let capacity () = locked (fun () -> Array.length !ring)

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      next_seq := 0)

let push ev =
  let r = !ring in
  r.(ev.seq mod Array.length r) <- Some ev

let events () =
  locked (fun () ->
      let r = !ring in
      let cap = Array.length r in
      let first = max 0 (!next_seq - cap) in
      let acc = ref [] in
      for seq = !next_seq - 1 downto first do
        match r.(seq mod cap) with Some ev -> acc := ev :: !acc | None -> ()
      done;
      !acc)

(* ---------------- spans ---------------- *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let span_histogram phase = "span." ^ phase ^ ".ns"
let span_blocks_histogram phase = "span." ^ phase ^ ".blocks"

let enter ?(blocks = 0) phase =
  if not (Control.enabled ()) then none
  else begin
    let d = Domain.DLS.get depth_key in
    let sp = { sphase = phase; st0 = now_ns (); sblocks = blocks; sdepth = !d } in
    incr d;
    sp
  end

let exit ?(blocks = 0) sp =
  if sp != none then begin
    let d = Domain.DLS.get depth_key in
    if !d > 0 then decr d;
    let dur = now_ns () - sp.st0 in
    let blocks = max 0 (blocks - sp.sblocks) in
    locked (fun () ->
        let seq = !next_seq in
        incr next_seq;
        push { seq; phase = sp.sphase; depth = sp.sdepth; t0_ns = sp.st0; dur_ns = dur; blocks });
    Metrics.observe Metrics.default (span_histogram sp.sphase) dur;
    Metrics.observe Metrics.default (span_blocks_histogram sp.sphase) blocks
  end

let with_span ?(blocks = fun () -> 0) phase f =
  if not (Control.enabled ()) then f ()
  else begin
    let sp = enter ~blocks:(blocks ()) phase in
    Fun.protect ~finally:(fun () -> exit ~blocks:(blocks ()) sp) f
  end
