module Db = Segdb_core.Segdb
module Metrics = Segdb_obs.Metrics
module Control = Segdb_obs.Control
module Rng = Segdb_util.Rng

exception Error of string

type t = {
  addrs : Server.addr array;
  mutable cur : int;
  retries : int;
  backoff_ms : int;
  backoff_seed : int;
  timeout : float option;
  mutable fd : Unix.file_descr option;
  mutable probe : bool;
      (** health-probe (ping) the next endpoint before replaying a
          request on it — set whenever failover rotates *)
}

let c_io_retries = Metrics.counter Metrics.default "io.retries"
let c_net_retries = Metrics.counter Metrics.default "net.client.retries"
let c_failovers = Metrics.counter Metrics.default "net.client.failovers"

let count_retry () =
  if Control.enabled () then begin
    Metrics.incr c_io_retries;
    Metrics.incr c_net_retries
  end

let endpoint t = t.addrs.(t.cur)
let endpoints t = Array.to_list t.addrs

(* Deterministic jitter in [0.5, 1.0): clients seeded differently
   desynchronize (no retry storm against a restarted primary), while a
   fixed seed reproduces the exact schedule under test. *)
let jitter ~seed ~attempt =
  let r = Rng.create (seed lxor ((attempt + 1) * 0x2545f491)) in
  0.5 +. Rng.float r 0.5

let backoff_delay_s ~seed ~backoff_ms ~attempt =
  float_of_int (backoff_ms * (1 lsl min attempt 10)) /. 1000.0 *. jitter ~seed ~attempt

let backoff t attempt =
  count_retry ();
  Unix.sleepf (backoff_delay_s ~seed:t.backoff_seed ~backoff_ms:t.backoff_ms ~attempt)

(* A transport error anywhere mid-exchange leaves the stream possibly
   desynchronized; the only safe recovery is a fresh connection. *)
let drop t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let close = drop

(* Failover: after a drop, the next attempt goes to the next endpoint,
   health-probed before the request is replayed on it. *)
let rotate t =
  if Array.length t.addrs > 1 then begin
    t.cur <- (t.cur + 1) mod Array.length t.addrs;
    t.probe <- true;
    if Control.enabled () then Metrics.incr c_failovers
  end

let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE | Unix.ENOENT
  | Unix.EIO | Unix.ETIMEDOUT | Unix.ENETUNREACH | Unix.EHOSTUNREACH ->
      true
  | _ -> false

let sockaddr_of = function
  | Server.Unix_path p -> Unix.ADDR_UNIX p
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      Unix.ADDR_INET (ip, port)

let connect_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let addr = endpoint t in
      let sa = sockaddr_of addr in
      let dom =
        match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd sa;
         (match addr with
         | Server.Tcp _ -> (
             try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
         | Server.Unix_path _ -> ())
       with e ->
         (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
         raise e);
      t.fd <- Some fd;
      fd

type attempt =
  | Answer of Wire.response
  | Retry of string  (** transient; connection already dropped if suspect *)

(* With several endpoints the definitive/transient split shifts for
   two answers: [Not_primary] (a write or subscribe reached a replica)
   and [Shutting_down] (this node is draining) are failover-able —
   another endpoint may be the primary, or not draining. Single-
   endpoint clients keep the original semantics: both are answers. *)
let failover_code t = function
  | Wire.Not_primary | Wire.Shutting_down -> Array.length t.addrs > 1
  | _ -> false

let attempt_rpc t req =
  match
    let fd = connect_fd t in
    if t.probe then begin
      (* a cheap liveness check on the freshly rotated-to endpoint, so
         the real request is not burned discovering a dead server *)
      Wire.send fd (Wire.encode_request Wire.Ping);
      match Wire.recv ?timeout:t.timeout fd with
      | Result.Ok p when Wire.decode_response p = Result.Ok Wire.Pong -> t.probe <- false
      | _ -> raise (Unix.Unix_error (Unix.EIO, "health probe", ""))
    end;
    Wire.send fd (Wire.encode_request req);
    Wire.recv ?timeout:t.timeout fd
  with
  | Result.Ok payload -> (
      match Wire.decode_response payload with
      | Result.Ok (Wire.Error ((Wire.Overloaded | Wire.Corrupt_frame) as code, msg)) ->
          (* Corrupt_frame means the server saw damage on this stream
             and will close it — reconnect rather than race the close *)
          if code = Wire.Corrupt_frame then drop t;
          Retry (Wire.error_code_to_string code ^ ": " ^ msg)
      | Result.Ok (Wire.Error (code, msg)) when failover_code t code ->
          drop t;
          Retry (Wire.error_code_to_string code ^ ": " ^ msg)
      | Result.Ok resp -> Answer resp
      | Result.Error e ->
          drop t;
          Retry (Wire.protocol_error_to_string e))
  | Result.Error e ->
      drop t;
      Retry (Wire.protocol_error_to_string e)
  | exception Unix.Unix_error (code, fn, _) when transient code ->
      drop t;
      Retry (Printf.sprintf "%s: %s" fn (Unix.error_message code))

let rpc t req =
  let rec go attempt =
    match attempt_rpc t req with
    | Answer resp -> resp
    | Retry why ->
        if attempt >= t.retries then
          raise
            (Error
               (Printf.sprintf "%s: giving up after %d attempts (%s)"
                  (Server.addr_to_string (endpoint t)) (attempt + 1) why));
        (* rotate only when the connection was dropped: an [Overloaded]
           answer keeps both the stream and the endpoint *)
        if t.fd = None then rotate t;
        backoff t attempt;
        go (attempt + 1)
  in
  go 0

let connect_many ?(retries = 4) ?(backoff_ms = 10) ?(timeout_ms = 5000) ?backoff_seed addrs =
  if addrs = [] then invalid_arg "Client.connect_many: at least one endpoint required";
  let backoff_seed =
    match backoff_seed with
    | Some s -> s
    | None ->
        (* per-process default: distinct clients must not share a
           jitter schedule *)
        (Unix.getpid () * 0x9e3779b1) lxor int_of_float (Unix.gettimeofday () *. 1e6)
  in
  let t =
    {
      addrs = Array.of_list addrs;
      cur = 0;
      retries = max 0 retries;
      backoff_ms = max 1 backoff_ms;
      backoff_seed;
      timeout = (if timeout_ms <= 0 then None else Some (float_of_int timeout_ms /. 1000.0));
      fd = None;
      probe = false;
    }
  in
  let rec go attempt =
    match connect_fd t with
    | _ -> ()
    | exception Unix.Unix_error (code, _, _) when transient code ->
        if attempt >= t.retries then
          raise
            (Error
               (Printf.sprintf "%s: connect failed after %d attempts (%s)"
                  (Server.addr_to_string (endpoint t)) (attempt + 1)
                  (Unix.error_message code)));
        rotate t;
        backoff t attempt;
        go (attempt + 1)
  in
  go 0;
  t

let connect ?retries ?backoff_ms ?timeout_ms ?backoff_seed addr =
  connect_many ?retries ?backoff_ms ?timeout_ms ?backoff_seed [ addr ]

let unexpected what resp =
  let got =
    match resp with
    | Wire.Error (code, msg) -> Wire.error_code_to_string code ^ ": " ^ msg
    | Wire.Pong -> "pong"
    | Wire.Ids _ -> "ids"
    | Wire.Counted _ -> "count"
    | Wire.Batch_ids _ -> "batch ids"
    | Wire.Stats_payload _ -> "stats"
    | Wire.Shutdown_ack -> "shutdown ack"
    | Wire.Trace_events _ -> "trace events"
    | Wire.Slowlog_payload _ -> "slowlog"
    | Wire.Applied _ -> "applied"
    | Wire.Repl_records _ -> "repl records"
    | Wire.Repl_snapshot _ -> "repl snapshot"
    | Wire.Repl_status_payload _ -> "repl status"
    | Wire.Promoted _ -> "promoted"
  in
  raise (Error (Printf.sprintf "expected %s, got %s" what got))

let ping t = match rpc t Wire.Ping with Wire.Pong -> () | r -> unexpected "pong" r

let query t q =
  match rpc t (Wire.Query q) with
  | Wire.Ids { ids; complete; faults } ->
      { Db.Degraded.value = ids; complete; faults }
  | r -> unexpected "ids" r

let count t q =
  match rpc t (Wire.Count q) with Wire.Counted n -> n | r -> unexpected "count" r

let batch t qs =
  match rpc t (Wire.Batch qs) with
  | Wire.Batch_ids { results; complete; faults } ->
      { Db.Degraded.value = results; complete; faults }
  | r -> unexpected "batch ids" r

let batch_ex t ?(request_id = 0) ?(trace = false) qs =
  match rpc t (Wire.Batch_ex { request_id; trace; queries = qs }) with
  | Wire.Batch_ids { results; complete; faults } ->
      { Db.Degraded.value = results; complete; faults }
  | r -> unexpected "batch ids" r

let fetch_trace t ~request_id =
  match rpc t (Wire.Trace_fetch { request_id }) with
  | Wire.Trace_events evs -> evs
  | r -> unexpected "trace events" r

let slowlog t fmt =
  match rpc t (Wire.Slowlog fmt) with
  | Wire.Slowlog_payload s -> s
  | r -> unexpected "slowlog" r

let stats t fmt =
  match rpc t (Wire.Stats fmt) with
  | Wire.Stats_payload s -> s
  | r -> unexpected "stats" r

let shutdown t =
  match rpc t Wire.Shutdown with Wire.Shutdown_ack -> () | r -> unexpected "shutdown ack" r

let insert t s =
  match rpc t (Wire.Insert s) with
  | Wire.Applied { lsn; changed } -> (lsn, changed)
  | r -> unexpected "applied" r

let delete t s =
  match rpc t (Wire.Delete s) with
  | Wire.Applied { lsn; changed } -> (lsn, changed)
  | r -> unexpected "applied" r

let promote ?(epoch = 0) t =
  match rpc t (Wire.Promote { epoch }) with
  | Wire.Promoted { epoch } -> epoch
  | r -> unexpected "promoted" r

let repl_status t =
  match rpc t Wire.Repl_status with
  | Wire.Repl_status_payload st -> st
  | r -> unexpected "repl status" r
