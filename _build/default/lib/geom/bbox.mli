(** Axis-aligned bounding boxes (substrate for the R-tree baseline). *)

type t = { minx : float; miny : float; maxx : float; maxy : float }

val make : minx:float -> miny:float -> maxx:float -> maxy:float -> t
(** Raises [Invalid_argument] on an inverted box. *)

val of_segment : Segment.t -> t
val of_vquery : Vquery.t -> t

val union : t -> t -> t
val intersects : t -> t -> bool
val contains : t -> t -> bool
val area : t -> float
val margin : t -> float

val enlargement : t -> t -> float
(** [enlargement box extra]: area growth of [box] if extended to cover
    [extra]. *)

val center : t -> float * float
val pp : Format.formatter -> t -> unit
