lib/btree/bplus_tree.ml: Array Block_store List Segdb_io
