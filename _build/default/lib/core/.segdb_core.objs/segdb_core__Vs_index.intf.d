lib/core/vs_index.mli: Block_store Io_stats Segdb_geom Segdb_io Segment Vquery
