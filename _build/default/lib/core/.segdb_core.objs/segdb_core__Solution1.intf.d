lib/core/solution1.mli: Vs_index
