(** Instrumentation helpers for the I/O stack and the index structures.

    {!Segdb_obs} cannot depend on {!Io_stats}, so block accounting for
    spans happens here: [span stats phase f] runs [f] inside a trace
    span whose block count is the delta of the {e effective} stats
    counter — the installed reader's inside
    {!Read_context.with_reader}, [stats] otherwise.

    All helpers are no-ops (one atomic load) while
    {!Segdb_obs.Control.enabled} is false. *)

val span : Io_stats.t -> string -> (unit -> 'a) -> 'a

val blocks_of : Io_stats.t -> unit -> int
(** The sampling function [span] uses; exposed for call sites that
    manage {!Segdb_obs.Trace.enter}/[exit] by hand. *)

val counter : string -> Segdb_obs.Metrics.counter
(** A handle in {!Segdb_obs.Metrics.default}; resolve once per module. *)

val bump : Segdb_obs.Metrics.counter -> unit
(** Increment, only when observability is enabled. *)

val bump_by : Segdb_obs.Metrics.counter -> int -> unit
