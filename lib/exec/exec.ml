open Segdb_geom
module Db = Segdb_core.Segdb
module Cancel = Segdb_io.Cancel
module Io_stats = Segdb_io.Io_stats
module Read_context = Segdb_io.Read_context
module Obs = Segdb_obs

(* ---------------- requests and outcomes ---------------- *)

type request = {
  rq_queries : Vquery.t array;
  rq_deadline_ns : int; (* absolute, 0 = none; clock starts at construction *)
  rq_degraded_ok : bool;
  rq_trace : bool;
  rq_id : int; (* request id carried into trace spans; never 0 *)
}

let request ?(deadline_ms = 0) ?(degraded_ok = true) ?(trace = false) ?request_id queries =
  let deadline_ns =
    if deadline_ms > 0 then Obs.Trace.now_ns () + (deadline_ms * 1_000_000) else 0
  in
  let rq_id =
    match request_id with
    | Some rid when rid <> 0 -> rid
    | _ -> Obs.Trace.fresh_request_id ()
  in
  {
    rq_queries = queries;
    rq_deadline_ns = deadline_ns;
    rq_degraded_ok = degraded_ok;
    rq_trace = trace;
    rq_id;
  }

let queries r = r.rq_queries
let deadline_ns r = r.rq_deadline_ns
let request_id r = r.rq_id

type outcome =
  | Ok of int list array
  | Degraded of int list array * string list
  | Deadline_exceeded of { partial : int list array; completed : int }
  | Overloaded
  | Cancelled of { partial : int list array; completed : int }

let outcome_name = function
  | Ok _ -> "ok"
  | Degraded _ -> "degraded"
  | Deadline_exceeded _ -> "deadline"
  | Overloaded -> "overloaded"
  | Cancelled _ -> "cancelled"

let pp_outcome ppf = function
  | Ok out -> Format.fprintf ppf "ok (%d queries)" (Array.length out)
  | Degraded (out, faults) ->
      Format.fprintf ppf "degraded (%d queries, %d faults)" (Array.length out)
        (List.length faults)
  | Deadline_exceeded { partial; completed } ->
      Format.fprintf ppf "deadline exceeded (%d/%d completed)" completed
        (Array.length partial)
  | Overloaded -> Format.fprintf ppf "overloaded"
  | Cancelled { partial; completed } ->
      Format.fprintf ppf "cancelled (%d/%d completed)" completed (Array.length partial)

(* ---------------- the pool ---------------- *)

type job = unit -> unit

type t = {
  size : int;
  queue_depth : int;
  jobs : job Queue.t;
  m : Mutex.t;
  c : Condition.t;
  mutable pending : int; (* admitted submits not yet picked up; gates admission *)
  stopping : bool Atomic.t;
  mutable workers : unit Domain.t array;
  busy_ : int Atomic.t; (* workers currently inside a job — pool occupancy *)
  (* metric handles, resolved once; shared names across pools sum up *)
  g_depth : Obs.Metrics.gauge;
  g_busy : Obs.Metrics.gauge;
  c_deadline : Obs.Metrics.counter;
  c_cancelled : Obs.Metrics.counter;
}

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.jobs && not (Atomic.get t.stopping) do
      Condition.wait t.c t.m
    done;
    match Queue.take_opt t.jobs with
    | None ->
        (* stopping and drained *)
        Mutex.unlock t.m
    | Some job ->
        if Obs.Control.enabled () then Obs.Metrics.set_gauge t.g_depth (Queue.length t.jobs);
        Mutex.unlock t.m;
        Atomic.incr t.busy_;
        if Obs.Control.enabled () then
          Obs.Metrics.set_gauge t.g_busy (Atomic.get t.busy_);
        Fun.protect ~finally:(fun () ->
            Atomic.decr t.busy_;
            if Obs.Control.enabled () then
              Obs.Metrics.set_gauge t.g_busy (Atomic.get t.busy_))
          job;
        loop ()
  in
  loop ()

let create ?(queue_depth = 128) ~workers () =
  let t =
    {
      size = max 1 workers;
      queue_depth = max 0 queue_depth;
      jobs = Queue.create ();
      m = Mutex.create ();
      c = Condition.create ();
      pending = 0;
      stopping = Atomic.make false;
      workers = [||];
      busy_ = Atomic.make 0;
      g_depth = Obs.Metrics.gauge Obs.Metrics.default "exec.queue_depth";
      g_busy = Obs.Metrics.gauge Obs.Metrics.default "exec.pool_busy";
      c_deadline = Obs.Metrics.counter Obs.Metrics.default "exec.deadline_exceeded";
      c_cancelled = Obs.Metrics.counter Obs.Metrics.default "exec.cancelled";
    }
  in
  t.workers <- Array.init t.size (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size
let queue_depth t = t.queue_depth
let busy t = Atomic.get t.busy_

let queued t =
  Mutex.lock t.m;
  let n = Queue.length t.jobs in
  Mutex.unlock t.m;
  n

let shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.lock t.m;
    Condition.broadcast t.c;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* Helper jobs for [run] bypass admission: they are opportunistic — the
   caller answers the batch alone if no worker ever picks one up. *)
let push_helper t job =
  Mutex.lock t.m;
  Queue.push job t.jobs;
  if Obs.Control.enabled () then Obs.Metrics.set_gauge t.g_depth (Queue.length t.jobs);
  Condition.signal t.c;
  Mutex.unlock t.m

(* ---------------- per-query execution ---------------- *)

let ids_of_segs segs =
  List.sort_uniq compare (List.map (fun (s : Segment.t) -> s.id) segs)

(* One query through a reader. [degraded_ok] routes through
   [query_safe]: storage faults come back as strings instead of
   raising ([Injected_crash] still propagates — process death). *)
let query_one ~degraded_ok db r q =
  if degraded_ok then begin
    let d = Db.with_reader r (fun () -> Db.query_safe db q) in
    (ids_of_segs d.Db.Degraded.value, d.Db.Degraded.faults)
  end
  else (Db.query_ids_r db r q, [])

(* ---------------- cooperative fan-out ---------------- *)

type stop_reason = R_fault of exn * Printexc.raw_backtrace | R_deadline | R_cancel

(* The core of [run] and of the [Segdb.parallel_query] engine hook.

   Shape: the caller is participant 0-or-later (slots are claimed with
   a fetch-and-add, first come first slotted); up to [domains - 1]
   helper jobs are enqueued on the pool. Everyone pulls query indexes
   off one shared cursor until it runs dry or a stop reason (fault,
   deadline, cancel) is posted.

   Termination protocol: a participant increments [running] and only
   then checks [closed]; the caller sets [closed] after its own loop
   and spins until [running] drops to zero. A helper that starts after
   [closed] (the pool was busy; the batch is already done) sees the
   flag and exits without touching the arrays, so stale helpers are
   harmless no-ops. *)
let run_batch pool ?readers ?flag ?(request_id = 0) ~deadline_ns ~degraded_ok db qs ~domains =
  let n = Array.length qs in
  let out = Array.make n [] in
  let stats =
    Array.init domains (fun k ->
        { Db.worker = k; queries = 0; reads = 0; cache_hits = 0; cache_misses = 0 })
  in
  let pfaults = Array.make domains [] in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let slot = Atomic.make 0 in
  let running = Atomic.make 0 in
  let closed = Atomic.make false in
  let stop : stop_reason option Atomic.t = Atomic.make None in
  let post reason = ignore (Atomic.compare_and_set stop None (Some reason)) in
  let flag = match flag with Some f -> f | None -> Atomic.make false in
  let inline = pool.size <= 1 || domains <= 1 in
  let participant () =
    let k = Atomic.fetch_and_add slot 1 in
    if k < domains then begin
      Atomic.incr running;
      if not (Atomic.get closed) then begin
        let r = match readers with Some rs -> rs.(k) | None -> Db.reader db in
        let h = Cancel.create ~deadline_ns ~flag () in
        let lat = if Obs.Control.enabled () then Some (Obs.Histogram.create ()) else None in
        let served = ref 0 in
        let h0 = Read_context.cache_hits r and m0 = Read_context.cache_misses r in
        let r0 = Io_stats.reads (Db.reader_io r) in
        let rec loop first =
          if Atomic.get closed || Atomic.get stop <> None then ()
          else if Cancel.cancelled h then post R_cancel
          else if (not first) && Cancel.expired h then post R_deadline
          else begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (* first-query immunity: the deadline arms only once this
                 participant has answered something, so a tight budget
                 degrades to a partial batch, never an empty one *)
              Cancel.set_deadline_enabled h (not first);
              let ids, faults =
                match lat with
                | Some hist ->
                    let t0 = Obs.Trace.now_ns () in
                    let res = query_one ~degraded_ok db r qs.(i) in
                    Obs.Histogram.record hist (Obs.Trace.now_ns () - t0);
                    res
                | None -> query_one ~degraded_ok db r qs.(i)
              in
              out.(i) <- ids;
              if faults <> [] then pfaults.(k) <- List.rev_append faults pfaults.(k);
              incr served;
              loop false
            end
          end
        in
        (* the handle is installed once for the whole batch — per-query
           install cost (DLS save/restore, the process-wide counter)
           would dominate cheap queries *)
        let install () =
          (* attribute this participant's spans to the request; helpers
             run on pool domains whose DLS id would otherwise be stale *)
          if request_id <> 0 && Obs.Control.enabled () then
            Obs.Trace.with_request_id request_id (fun () ->
                Cancel.install h (fun () -> loop true))
          else Cancel.install h (fun () -> loop true)
        in
        (match install () with
        | () -> ()
        | exception Cancel.Cancelled Cancel.Deadline -> post R_deadline
        | exception Cancel.Cancelled Cancel.Explicit -> post R_cancel
        | exception e -> post (R_fault (e, Printexc.get_raw_backtrace ())));
        (* folded once per participant — a per-query RMW on a shared
           counter is measurable against cheap queries *)
        ignore (Atomic.fetch_and_add completed !served);
        (match lat with
        | Some hist ->
            Obs.Metrics.merge_histogram Obs.Metrics.default "parallel.query.ns" hist
        | None -> ());
        stats.(k) <-
          {
            Db.worker = k;
            queries = !served;
            reads = Io_stats.reads (Db.reader_io r) - r0;
            cache_hits = Read_context.cache_hits r - h0;
            cache_misses = Read_context.cache_misses r - m0;
          }
      end;
      Atomic.decr running
    end
  in
  if not inline then
    for _ = 1 to min (domains - 1) pool.size do
      push_helper pool participant
    done;
  participant ();
  Atomic.set closed true;
  while Atomic.get running > 0 do
    Domain.cpu_relax ()
  done;
  let faults =
    Array.fold_left (fun acc l -> acc @ List.rev l) [] pfaults
  in
  let outcome =
    match Atomic.get stop with
    | Some (R_fault (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some R_deadline ->
        if Obs.Control.enabled () then Obs.Metrics.incr pool.c_deadline;
        Deadline_exceeded { partial = out; completed = Atomic.get completed }
    | Some R_cancel ->
        if Obs.Control.enabled () then Obs.Metrics.incr pool.c_cancelled;
        Cancelled { partial = out; completed = Atomic.get completed }
    | None -> if faults = [] then Ok out else Degraded (out, faults)
  in
  (outcome, stats)

(* One slow-query record. [mk] is only called past the threshold, so
   the query rendering never runs on the fast path. *)
let slowlog_entry ~request_id ~wall_ns ~queue_wait_ns ~blocks ~cache_hits ~cache_misses req
    outcome =
  {
    Obs.Slowlog.request_id;
    query =
      (if Array.length req.rq_queries = 0 then "-"
       else Format.asprintf "%a" Vquery.pp req.rq_queries.(0));
    queries = Array.length req.rq_queries;
    outcome = outcome_name outcome;
    wall_ns;
    queue_wait_ns;
    blocks;
    cache_hits;
    cache_misses;
    at_ns = Obs.Trace.now_ns ();
  }

let run ?readers ?cancel pool db req ~domains =
  if domains < 1 then invalid_arg "Exec.run: domains must be >= 1";
  (match readers with
  | Some rs when Array.length rs <> domains ->
      invalid_arg "Exec.run: readers array must have one reader per domain"
  | _ -> ());
  let exec () =
    run_batch pool ?readers ?flag:cancel ~request_id:req.rq_id
      ~deadline_ns:req.rq_deadline_ns ~degraded_ok:req.rq_degraded_ok db req.rq_queries
      ~domains
  in
  let traced () = if req.rq_trace then Obs.Trace.with_span "exec.batch" exec else exec () in
  let slow = Obs.Slowlog.enabled () in
  let t0 = if slow then Obs.Trace.now_ns () else 0 in
  let ((outcome, stats) as res) =
    (* the caller participates, so its own spans need the id too *)
    if req.rq_id <> 0 && Obs.Control.enabled () then
      Obs.Trace.with_request_id req.rq_id traced
    else traced ()
  in
  if slow then
    Obs.Slowlog.note ~wall_ns:(Obs.Trace.now_ns () - t0) (fun () ->
        let blocks = Array.fold_left (fun a (s : Db.worker_stats) -> a + s.reads) 0 stats in
        let hits =
          Array.fold_left (fun a (s : Db.worker_stats) -> a + s.cache_hits) 0 stats
        in
        let misses =
          Array.fold_left (fun a (s : Db.worker_stats) -> a + s.cache_misses) 0 stats
        in
        slowlog_entry ~request_id:req.rq_id ~wall_ns:(Obs.Trace.now_ns () - t0)
          ~queue_wait_ns:0 ~blocks ~cache_hits:hits ~cache_misses:misses req outcome);
  res

(* ---------------- submitted execution ---------------- *)

type ticket = {
  tk_req : request;
  tk_flag : bool Atomic.t;
  tk_m : Mutex.t;
  tk_c : Condition.t;
  mutable tk_outcome : outcome option;
  mutable tk_served_by : int;
  tk_submitted_ns : int;
  tk_on_complete : (outcome -> unit) option;
  tk_pool : t;
}

let finish tk outcome =
  (match outcome with
  | Deadline_exceeded { completed; _ } ->
      if Obs.Log.would_log Obs.Log.Info then
        Obs.Log.info ~comp:"exec" "deadline exceeded" (fun () ->
            [
              Obs.Log.i "request_id" tk.tk_req.rq_id;
              Obs.Log.i "completed" completed;
              Obs.Log.i "queries" (Array.length tk.tk_req.rq_queries);
            ])
  | Cancelled { completed; _ } ->
      if Obs.Log.would_log Obs.Log.Info then
        Obs.Log.info ~comp:"exec" "request cancelled" (fun () ->
            [ Obs.Log.i "request_id" tk.tk_req.rq_id; Obs.Log.i "completed" completed ])
  | Ok _ | Degraded _ | Overloaded -> ());
  if Obs.Control.enabled () then begin
    (match outcome with
    | Deadline_exceeded _ -> Obs.Metrics.incr tk.tk_pool.c_deadline
    | Cancelled _ -> Obs.Metrics.incr tk.tk_pool.c_cancelled
    | Ok _ | Degraded _ | Overloaded -> ());
    Obs.Metrics.observe Obs.Metrics.default "exec.request.ns"
      (Obs.Trace.now_ns () - tk.tk_submitted_ns)
  end;
  Mutex.lock tk.tk_m;
  tk.tk_outcome <- Some outcome;
  Condition.broadcast tk.tk_c;
  Mutex.unlock tk.tk_m;
  match tk.tk_on_complete with None -> () | Some f -> f outcome

(* Per-domain reader cache for the submit path: a worker serving a
   stream of requests against one database keeps its LRU shard warm
   across requests — the behavior the network server had when it owned
   its workers. Keyed by physical identity of the database plus its
   mutation generation: a shard warmed before an insert or delete may
   hold stale pages, so the reader is rebuilt when the generation has
   moved. *)
let dls_readers : (Obj.t * int * Db.reader) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let cached_reader ?cache_blocks db =
  let slot = Domain.DLS.get dls_readers in
  let key = Obj.repr db in
  let gen = Db.generation db in
  match List.find_opt (fun (k, g, _) -> k == key && g = gen) !slot with
  | Some (_, _, r) -> r
  | None ->
      let r = Db.reader ?cache_blocks db in
      slot := (key, gen, r) :: List.filter (fun (k, _, _) -> k != key) !slot;
      r

(* Runs on a worker domain. Single-threaded over the batch, in order;
   the same first-query immunity and cancellation points as the
   cooperative path. *)
let execute tk ?cache_blocks db =
  tk.tk_served_by <- (Domain.self () :> int);
  let req = tk.tk_req in
  let obs = Obs.Control.enabled () in
  let slow = Obs.Slowlog.enabled () in
  let pickup_ns = if obs || slow then Obs.Trace.now_ns () else 0 in
  if obs then begin
    (* the queued interval: stamped at submit on the submitting domain,
       measured here on the worker — hence [record], not a span *)
    let wait = max 0 (pickup_ns - tk.tk_submitted_ns) in
    Obs.Metrics.observe Obs.Metrics.default "exec.queue_wait.ns" wait;
    Obs.Trace.record ~request_id:req.rq_id ~t0_ns:tk.tk_submitted_ns ~dur_ns:wait
      "exec.queue_wait"
  end;
  let qs = req.rq_queries in
  let n = Array.length qs in
  let out = Array.make n [] in
  let faults = ref [] in
  let completed = ref 0 in
  let blocks = ref 0 and hits = ref 0 and misses = ref 0 in
  let h = Cancel.create ~deadline_ns:req.rq_deadline_ns ~flag:tk.tk_flag () in
  let reason = ref `None in
  if Cancel.cancelled h then reason := `Cancel
  else if Cancel.expired h then
    (* expired while queued: refuse to start — the immunity rule only
       protects requests that reached a worker in time *)
    reason := `Deadline
  else begin
    let r = cached_reader ?cache_blocks db in
    let r0 = if slow then Io_stats.reads (Db.reader_io r) else 0 in
    let h0 = if slow then Read_context.cache_hits r else 0 in
    let m0 = if slow then Read_context.cache_misses r else 0 in
    let i = ref 0 in
    (* installed once for the whole batch, same as the cooperative path *)
    let body () =
      Cancel.install h (fun () ->
          while !reason = `None && !i < n do
            if Cancel.cancelled h then reason := `Cancel
            else if !completed > 0 && Cancel.expired h then reason := `Deadline
            else begin
              Cancel.set_deadline_enabled h (!completed > 0);
              (match query_one ~degraded_ok:req.rq_degraded_ok db r qs.(!i) with
              | ids, fs ->
                  out.(!i) <- ids;
                  if fs <> [] then faults := List.rev_append fs !faults;
                  incr completed
              | exception Cancel.Cancelled Cancel.Deadline -> reason := `Deadline
              | exception Cancel.Cancelled Cancel.Explicit -> reason := `Cancel
              | exception (Segdb_io.Failpoint.Injected_crash _ as e) ->
                  raise e (* models process death: kill this worker *)
              | exception e -> reason := `Fault (Printexc.to_string e));
              incr i
            end
          done)
    in
    let traced () =
      if req.rq_trace && obs then Obs.Trace.with_span "exec.batch" body else body ()
    in
    (* attribute the worker's storage spans to the request *)
    if obs then Obs.Trace.with_request_id req.rq_id traced else traced ();
    if slow then begin
      blocks := Io_stats.reads (Db.reader_io r) - r0;
      hits := Read_context.cache_hits r - h0;
      misses := Read_context.cache_misses r - m0
    end
  end;
  let outcome =
    match !reason with
    | `None ->
        let fs = List.rev !faults in
        if fs = [] then Ok out else Degraded (out, fs)
    | `Deadline -> Deadline_exceeded { partial = out; completed = !completed }
    | `Cancel -> Cancelled { partial = out; completed = !completed }
    | `Fault m -> Degraded (out, List.rev (m :: !faults))
  in
  if obs then
    Obs.Metrics.observe Obs.Metrics.default "exec.service.ns"
      (Obs.Trace.now_ns () - pickup_ns);
  if slow then
    Obs.Slowlog.note ~wall_ns:(Obs.Trace.now_ns () - tk.tk_submitted_ns) (fun () ->
        slowlog_entry ~request_id:req.rq_id
          ~wall_ns:(Obs.Trace.now_ns () - tk.tk_submitted_ns)
          ~queue_wait_ns:(max 0 (pickup_ns - tk.tk_submitted_ns))
          ~blocks:!blocks ~cache_hits:!hits ~cache_misses:!misses req outcome);
  finish tk outcome

let submit ?cache_blocks ?on_complete pool db req =
  let tk =
    {
      tk_req = req;
      tk_flag = Atomic.make false;
      tk_m = Mutex.create ();
      tk_c = Condition.create ();
      tk_outcome = None;
      tk_served_by = -1;
      tk_submitted_ns = Obs.Trace.now_ns ();
      tk_on_complete = on_complete;
      tk_pool = pool;
    }
  in
  Mutex.lock pool.m;
  let admitted =
    (not (Atomic.get pool.stopping)) && pool.pending < pool.queue_depth
  in
  if admitted then begin
    pool.pending <- pool.pending + 1;
    Queue.push
      (fun () ->
        Mutex.lock pool.m;
        pool.pending <- pool.pending - 1;
        Mutex.unlock pool.m;
        execute tk ?cache_blocks db)
      pool.jobs;
    if Obs.Control.enabled () then
      Obs.Metrics.set_gauge pool.g_depth (Queue.length pool.jobs);
    Condition.signal pool.c
  end;
  Mutex.unlock pool.m;
  if not admitted then begin
    if Obs.Log.would_log Obs.Log.Warn then
      Obs.Log.warn ~comp:"exec" "request refused: queue full" (fun () ->
          [
            Obs.Log.i "request_id" req.rq_id;
            Obs.Log.i "queue_depth" pool.queue_depth;
            Obs.Log.i "queries" (Array.length req.rq_queries);
          ]);
    finish tk Overloaded
  end;
  tk

let await tk =
  Mutex.lock tk.tk_m;
  while Option.is_none tk.tk_outcome do
    Condition.wait tk.tk_c tk.tk_m
  done;
  let o = Option.get tk.tk_outcome in
  Mutex.unlock tk.tk_m;
  o

let peek tk =
  Mutex.lock tk.tk_m;
  let o = tk.tk_outcome in
  Mutex.unlock tk.tk_m;
  o

let cancel tk = Atomic.set tk.tk_flag true
let served_by tk = tk.tk_served_by

(* ---------------- the process-default pool ---------------- *)

let default_workers_override =
  ref
    (match Sys.getenv_opt "SEGDB_EXEC_WORKERS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None)
    | None -> None)

let default_pool : t option ref = ref None
let default_m = Mutex.create ()

let set_default_workers n =
  Mutex.lock default_m;
  if !default_pool = None && n > 0 then default_workers_override := Some n;
  Mutex.unlock default_m

let default_created () =
  Mutex.lock default_m;
  let c = !default_pool <> None in
  Mutex.unlock default_m;
  c

let default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let workers =
          match !default_workers_override with
          | Some n -> n
          | None -> max 1 (Domain.recommended_domain_count () - 1)
        in
        let p = create ~workers () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_m;
  p

(* ---------------- the Segdb engine hook ----------------

   Linking this library routes [Segdb.parallel_query] (and the _stats
   variant) through the default pool: no deadline, no cancellation,
   faults re-raised — byte-for-byte the spawning executor's contract,
   minus the per-call domain spawns. [Segdb] handles [domains = 1]
   inline before consulting the engine. *)

let engine ?readers db qs ~domains =
  let pool = default () in
  match
    run_batch pool ?readers ~deadline_ns:0 ~degraded_ok:false db qs ~domains
  with
  | Ok out, stats -> (out, stats)
  | (Degraded _ | Deadline_exceeded _ | Overloaded | Cancelled _), _ ->
      assert false (* no deadline, no flag, faults raise: only Ok is reachable *)

let () = Db.set_batch_engine engine
