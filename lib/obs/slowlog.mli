(** The slow-query log: a bounded in-memory ring of structured records
    for requests whose wall time cleared a threshold.

    Disabled by default; the hot-path check ({!enabled}, or the
    threshold compare inside {!note}) is one [Atomic.get]. A threshold
    of [0] ms records {e every} request — handy for smoke tests and
    short captures. *)

type entry = {
  request_id : int;
  query : string;  (** rendering of the (first) query rect *)
  queries : int;  (** batch size *)
  outcome : string;  (** "ok", "degraded", "deadline", ... *)
  wall_ns : int;  (** submit-to-completion wall time *)
  queue_wait_ns : int;  (** of which: waiting for a worker *)
  blocks : int;  (** block reads charged to the request *)
  cache_hits : int;
  cache_misses : int;
  at_ns : int;  (** completion wall-clock stamp, ns since epoch *)
}

val enabled : unit -> bool
(** One [Atomic.get]: is a threshold armed? *)

val set_threshold_ms : int -> unit
(** Negative disables the log; [0] records everything; positive
    records requests at least that many milliseconds of wall time. *)

val threshold_ms : unit -> int
(** The armed threshold, or [-1] when disabled. *)

val note : wall_ns:int -> (unit -> entry) -> unit
(** [note ~wall_ns mk] records [mk ()] iff a threshold is armed and
    [wall_ns] clears it; [mk] is only forced then. *)

val record : entry -> unit
(** Unconditionally push an entry (callers that did their own
    threshold check). *)

val entries : unit -> entry list
(** Retained entries, oldest first. *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Resize the ring (default 128), dropping retained entries. Raises
    [Invalid_argument] when not positive. *)

val to_text : entry list -> string
(** Aligned table (request ids in hex), or a placeholder line when
    empty. *)

val to_json : entry list -> string
(** A JSON array of records, one object per entry. *)

val configure_from_env : unit -> unit
(** Read [SEGDB_SLOW_MS] (milliseconds; negative disables). Unset or
    unparsable leaves the current threshold. *)
