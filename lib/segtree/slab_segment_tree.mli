open Segdb_io
open Segdb_geom

(** The structure [G] of Section 4.2: a segment tree over the slabs of a
    first-level node, storing *long fragments* (pieces of NCT segments
    whose endpoints lie exactly on slab boundaries), with the fractional
    cascading of Section 4.3 connecting the multislab lists of adjacent
    levels.

    Every internal node covers a contiguous range of gaps (slabs between
    consecutive boundaries); a fragment spanning boundaries
    [s_a .. s_b] is allocated to the O(log2 b) maximal nodes whose range
    it covers — at most two per level. A node's fragments are kept in a
    {!Packed_list} ordered by their crossing of the node's leftmost
    boundary; since all fragments are mutually non-crossing, this order
    agrees with the vertical order at every abscissa inside the node's
    span, so the fragments hit by a vertical query segment form a
    contiguous run.

    Cascading: each list entry stores the position ("landing") of its
    successor in each child's list — the paper's bridges in the exact
    (d -> 0) limit: instead of copying every (d+1)-th fragment downward
    and tolerating a 2d-entry slack, we precompute the exact merge
    position, which is cheaper in space (two integers per entry, no
    augmented fragments) and never scans non-matching entries: the
    backward walk from a landing visits only reported fragments. A
    query therefore pays one list search at the root of [G] and O(1)
    blocks plus output on every deeper level — the paper's
    [O(log_B n + log2 B + t')] per first-level node. With
    [~cascade:false] every level pays its own list search (the Lemma 4
    regime), which experiment E5 compares. *)

type t

val build :
  ?cascade:bool ->
  ?list_block:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  boundaries:float array ->
  Segment.t array ->
  t
(** [boundaries] must be >= 2 strictly increasing abscissas; every
    fragment's endpoints must lie exactly on boundaries, spanning at
    least one gap. [list_block] is the block capacity of multislab
    lists (default 64). Raises [Invalid_argument] on violations. *)

val query : t -> x:float -> ylo:float -> yhi:float -> f:(Segment.t -> unit) -> unit
(** Reports the stored fragments intersected by the vertical segment
    [{x} × [ylo, yhi]]. When [x] falls strictly inside a gap each
    fragment is reported exactly once; when [x] equals an interior
    boundary, fragments touching it from both sides are reported and
    de-duplicated by id. *)

val query_list : t -> x:float -> ylo:float -> yhi:float -> Segment.t list

val size : t -> int
(** Number of fragments stored (each counted once). *)

val stored_entries : t -> int
(** Total list entries across allocation nodes (size x multiplicity). *)

val block_count : t -> int

val guided_levels : t -> int
(** Cumulative count of levels entered through a cascading landing.
    Maintained atomically: counters are the one thing a query is
    allowed to bump, and queries may run from several domains. *)

val fallback_searches : t -> int
(** Cumulative count of levels that needed a full list search (the
    root always does; deeper levels only when a list had no match). *)

val check_invariants : t -> bool

(** {1 Semi-dynamic insertion} *)

val insert : t -> Segment.t -> unit
(** Inserts a long fragment (endpoints on boundaries, spanning at least
    one gap). The fragment goes to dynamic per-node overlay B+-trees
    searched alongside the cascaded lists; when the overlay outgrows the
    static part a doubling rebuild folds it in — the substitute for the
    paper's BB[alpha]-based [G] with incremental bridge maintenance (see
    DESIGN.md). Amortized logarithmic. *)

val delete : t -> Segment.t -> bool
(** Lazy deletion by fragment id: the entry is tombstoned (filtered from
    answers at zero I/O cost) and physically purged at the next doubling
    rebuild. Returns [false] if the id is already tombstoned. *)

val overlay_size : t -> int
(** Fragments currently in overlays (diagnostics). *)

val iter_unique : t -> (Segment.t -> unit) -> unit
(** Every stored fragment once (rebuild collection). *)
