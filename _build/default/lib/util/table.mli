(** Plain-text result tables for the experiment harness.

    A table has a title, a header row and data rows; [render] aligns the
    columns so experiment output is directly readable (and diffable) in a
    terminal or a log file. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty.
    Raises [Invalid_argument] on rows longer than the header. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string

val render : t -> string
(** Full table, trailing newline included. *)

val print : t -> unit
(** [render] to stdout. *)
