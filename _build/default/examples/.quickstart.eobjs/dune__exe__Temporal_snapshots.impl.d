examples/temporal_snapshots.ml: List Printf Segdb_core Segdb_geom Segdb_io Segdb_util Segdb_workload Segment Vquery
