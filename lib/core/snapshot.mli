(** Snapshot files: the on-disk form of a built [Segdb.t].

    Layout (all integers little-endian):

    {v
    "SEGDBSNP" | version u32
    header_len u32 | header | crc32(header) u32
    sections until EOF, each: tag u8 | len u64 | crc32(payload) u32 | payload
    v}

    The header records the backend tag, block size, pool capacity,
    cascade flag, segment count, and an MD5 digest of the executable
    that wrote the file. Two sections are defined: the {e segments}
    section (tag 1, mandatory) holds every stored segment in the binary
    layout of {!Seg_file.array_codec} — the authoritative, binary-
    independent contents; the {e image} section (tag 2, optional) holds
    a marshaled image of the live index, valid only for the executable
    that wrote it (closures are marshaled), which is what makes
    reopening without a rebuild possible. [Segdb.open_db] restores the
    image when the digest matches the running executable and falls back
    to rebuilding from the segments section otherwise.

    Saves are atomic: the file is written beside the target and renamed
    over it, so a crashed save leaves the previous snapshot intact. *)

exception Corrupt_snapshot of string

type header = {
  backend : string;
  block : int;
  pool_blocks : int;
  cascade : bool;
  count : int;  (** segments in the segments section *)
  digest : string;  (** MD5 hex of the writing executable; guards the image *)
}

type contents = {
  header : header;
  segments : Segdb_geom.Segment.t array;
  image : string option;
}

val self_digest : unit -> string
(** MD5 hex of the running executable (memoized). *)

val write :
  path:string ->
  header ->
  segments:Segdb_geom.Segment.t array ->
  image:string option ->
  unit

val read : path:string -> contents
(** Raises {!Corrupt_snapshot} on damage; every section is CRC-checked
    before use. *)

val salvage : path:string -> string list * contents option
(** Best-effort read for repair: returns findings (empty means the file
    is pristine) plus whatever survives. A damaged image section is
    dropped — costing only the rebuild fast path — and a segment-count
    mismatch trusts the section; only a destroyed segments section (or
    header) loses the contents. Never raises on damage. *)
