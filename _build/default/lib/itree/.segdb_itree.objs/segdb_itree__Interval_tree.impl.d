lib/itree/interval_tree.ml: Array Block_store Hashtbl Int Io_stats List Map Segdb_btree Segdb_geom Segdb_io Segment
